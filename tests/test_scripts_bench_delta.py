"""bench_delta reporting: one-sided modes, new ratio gates.

The delta table must state one-sided rows explicitly — a bench mode
present only in the current run is "new", one present only in the
baseline is "not in current run" — instead of an ambiguous n/a, and
rows neither run measured are dropped. The soft regression gate covers
the kernel-family ratio rows, including the multicopy and trace pairs.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_delta", ROOT / "scripts" / "bench_delta.py"
)
bench_delta = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_delta)


WORKLOAD = {
    "sessions": 1000,
    "n": 100,
    "group_size": 5,
    "onion_routers": 3,
    "copies": 1,
    "horizon": 720.0,
    "seed": 42,
}


def report(**overrides):
    base = {
        "workload": dict(WORKLOAD),
        "results": {},
        "identical_outcomes": True,
    }
    base.update(overrides)
    return base


def test_new_mode_reported_as_new():
    current = report(speedup_kernel_multicopy_vs_columnar=19.3)
    baseline = report()
    table = bench_delta.build_table(current, baseline, [])
    row = next(
        line for line in table.splitlines()
        if "multicopy kernel vs columnar" in line
    )
    assert "| new |" in row
    assert "19.30x" in row


def test_baseline_only_mode_reported_not_skipped():
    current = report()
    baseline = report(speedup_kernel_trace_vs_columnar=5.2)
    table = bench_delta.build_table(current, baseline, [])
    row = next(
        line for line in table.splitlines()
        if "trace kernel vs columnar" in line
    )
    assert "not in current run" in row


def test_unmeasured_rows_are_dropped():
    table = bench_delta.build_table(report(), report(), [])
    assert "multicopy kernel" not in table
    assert "producer speedup" not in table


def test_two_sided_rows_keep_percentage_delta():
    current = report(speedup_kernel_multicopy_vs_columnar=10.0)
    baseline = report(speedup_kernel_multicopy_vs_columnar=20.0)
    table = bench_delta.build_table(current, baseline, [])
    row = next(
        line for line in table.splitlines()
        if "multicopy kernel vs columnar" in line
    )
    assert "-50.0%" in row


def test_multicopy_ratio_is_gated():
    current = report(speedup_kernel_multicopy_vs_columnar=10.0)
    baseline = report(speedup_kernel_multicopy_vs_columnar=20.0)
    regressions = bench_delta.find_regressions(current, baseline, threshold=25.0)
    labels = [label for label, _ in regressions]
    assert "multicopy kernel vs columnar dispatch" in labels


def test_trace_ratio_is_gated():
    current = report(speedup_kernel_trace_vs_columnar=2.0)
    baseline = report(speedup_kernel_trace_vs_columnar=5.0)
    regressions = bench_delta.find_regressions(current, baseline, threshold=25.0)
    labels = [label for label, _ in regressions]
    assert "trace kernel vs columnar dispatch" in labels


def test_one_sided_ratio_never_gates():
    # A mode subset run (e.g. --mode multicopy) lacks the other ratios;
    # missing-vs-present must not fire the gate.
    current = report(speedup_kernel_multicopy_vs_columnar=19.0)
    baseline = report(
        speedup_kernel_multicopy_vs_columnar=19.0,
        speedup_kernel_vs_columnar=9.0,
        speedup_kernel_trace_vs_columnar=5.0,
    )
    assert bench_delta.find_regressions(current, baseline, threshold=25.0) == []


def test_mismatched_workloads_stay_report_only():
    current = report(speedup_kernel_multicopy_vs_columnar=1.0)
    current["workload"]["sessions"] = 100
    baseline = report(speedup_kernel_multicopy_vs_columnar=20.0)
    assert bench_delta.find_regressions(current, baseline, threshold=25.0) == []

"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.ascii_chart import render_chart
from repro.experiments.result import FigureResult, Series


def _figure(series_count=2):
    series = []
    for index in range(series_count):
        offset = index * 0.2
        series.append(
            Series(
                label=f"S{index}",
                points=tuple(
                    (float(x), min(offset + 0.1 * x, 1.0)) for x in range(6)
                ),
            )
        )
    return FigureResult(
        figure_id="Fig. T",
        title="Chart test",
        x_label="x",
        y_label="y",
        series=tuple(series),
    )


class TestRenderChart:
    def test_contains_title_axes_and_legend(self):
        chart = render_chart(_figure())
        assert "Fig. T" in chart
        assert "legend:" in chart
        assert "o S0" in chart
        assert "x S1" in chart
        assert "(x)" in chart

    def test_dimensions(self):
        height = 10
        chart = render_chart(_figure(), width=40, height=height)
        lines = chart.splitlines()
        # title + height rows + axis + x labels + legend
        assert len(lines) == height + 4

    def test_markers_present_for_each_series(self):
        chart = render_chart(_figure(3))
        body = "\n".join(chart.splitlines()[1:-3])
        for marker in "ox+":
            assert marker in body

    def test_fixed_y_range(self):
        chart = render_chart(_figure(), y_min=0.0, y_max=1.0)
        assert "1.00" in chart
        assert "0.00" in chart

    def test_increasing_series_rises(self):
        """The marker's row index must decrease (visually rise) with x."""
        figure = FigureResult(
            figure_id="F",
            title="t",
            x_label="x",
            y_label="y",
            series=(
                Series(label="up", points=((0.0, 0.0), (1.0, 1.0))),
            ),
        )
        chart = render_chart(figure, width=20, height=8, y_min=0.0, y_max=1.0)
        rows = chart.splitlines()[1:9]
        first_column = min(row.index("o") for row in rows if "o" in row)
        top_row = next(i for i, row in enumerate(rows) if "o" in row)
        bottom_row = max(i for i, row in enumerate(rows) if "o" in row)
        assert top_row < bottom_row  # occupies high and low rows

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError, match="width"):
            render_chart(_figure(), width=5, height=2)

    def test_too_many_series_rejected(self):
        with pytest.raises(ValueError, match="at most"):
            render_chart(_figure(9))

    def test_flat_series_renders(self):
        figure = FigureResult(
            figure_id="F",
            title="flat",
            x_label="x",
            y_label="y",
            series=(Series(label="c", points=((0.0, 0.5), (1.0, 0.5))),),
        )
        chart = render_chart(figure)
        assert "o" in chart

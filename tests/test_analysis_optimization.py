"""Tests for the model-driven configuration search."""

import pytest

from repro.analysis.optimization import (
    ConfigurationScore,
    best_configuration,
    evaluate_configurations,
)
from repro.contacts.graph import ContactGraph


@pytest.fixture(scope="module")
def graph():
    return ContactGraph.complete(60, 0.02)


class TestEvaluateConfigurations:
    @pytest.fixture(scope="class")
    def scores(self, request):
        graph = ContactGraph.complete(60, 0.02)
        return evaluate_configurations(
            graph, deadline=300.0, compromise_rate=0.1,
            routes_per_point=10, rng=0,
        )

    def test_grid_covered(self, scores):
        combos = {(s.onion_routers, s.group_size, s.copies) for s in scores}
        assert (3, 5, 1) in combos
        assert (2, 10, 5) in combos

    def test_l_gt_g_excluded(self, scores):
        assert all(s.copies <= s.group_size for s in scores)

    def test_infeasible_k_excluded(self, scores):
        # g=10 on n=60 gives 6 groups; K=5 > 6-2 is infeasible
        assert not any(
            s.onion_routers == 5 and s.group_size == 10 for s in scores
        )

    def test_metrics_in_range(self, scores):
        for s in scores:
            assert 0.0 <= s.delivery <= 1.0
            assert 0.0 <= s.anonymity <= 1.0
            assert 0.0 <= s.traceable <= 1.0
            assert s.cost_bound == (s.onion_routers + 2) * s.copies

    def test_known_monotonicity(self, scores):
        """More copies never reduce delivery at the same (K, g)."""
        by_config = {
            (s.onion_routers, s.group_size, s.copies): s.delivery
            for s in scores
        }
        for (k, g, copies), delivery in by_config.items():
            more = by_config.get((k, g, copies + 1))
            if more is not None:
                assert more >= delivery - 0.05


class TestBestConfiguration:
    def test_feasible_pick(self, graph):
        best = best_configuration(
            graph, deadline=600.0, compromise_rate=0.1,
            delivery_target=0.9, routes_per_point=10, rng=1,
        )
        assert best.delivery >= 0.9

    def test_cost_budget_respected(self, graph):
        best = best_configuration(
            graph, deadline=600.0, compromise_rate=0.1,
            delivery_target=0.8, cost_budget=7, routes_per_point=10, rng=2,
        )
        assert best.cost_bound <= 7

    def test_prefers_anonymity(self, graph):
        """With a loose delivery constraint, larger groups should win."""
        best = best_configuration(
            graph, deadline=2000.0, compromise_rate=0.1,
            delivery_target=0.5, routes_per_point=10, rng=3,
        )
        assert best.group_size == 10  # max anonymity in the default grid
        assert best.copies == 1

    def test_impossible_constraints_raise(self, graph):
        with pytest.raises(ValueError, match="no configuration"):
            best_configuration(
                graph, deadline=0.1, compromise_rate=0.1,
                delivery_target=0.99, routes_per_point=5, rng=4,
            )

    def test_meets_helper(self):
        score = ConfigurationScore(
            onion_routers=3, group_size=5, copies=1,
            delivery=0.9, anonymity=0.9, traceable=0.05, cost_bound=5,
        )
        assert score.meets(0.85, 10)
        assert not score.meets(0.95, 10)
        assert not score.meets(0.85, 4)

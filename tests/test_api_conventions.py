"""Repository-level API conventions.

Meta-tests keeping the public surface disciplined: everything exported is
importable and documented, `__all__` lists are accurate, and the figure
registry stays in sync with the experiment modules.
"""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.adversary",
    "repro.contacts",
    "repro.core",
    "repro.crypto",
    "repro.experiments",
    "repro.extensions",
    "repro.routing",
    "repro.sim",
    "repro.utils",
]


class TestAllLists:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_entries_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue  # typing aliases, constants
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports without docstrings: {undocumented}"
        )


class TestClassDocumentation:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_methods_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(
                obj, predicate=inspect.isfunction
            ):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if (method.__doc__ or "").strip():
                    continue
                # overrides of documented interface methods inherit their
                # contract from the base class docstring
                inherited_doc = any(
                    (getattr(base, method_name, None) is not None)
                    and (getattr(base, method_name).__doc__ or "").strip()
                    for base in obj.__mro__[1:]
                )
                if not inherited_doc:
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, (
            f"{package_name} public methods without docstrings: {undocumented}"
        )


class TestFigureRegistry:
    def test_cli_registry_covers_all_paper_figures(self):
        from repro.cli import _FIGURES

        numbered = sorted(k for k in _FIGURES if isinstance(k, int))
        assert numbered == list(range(4, 20))
        named = sorted(k for k in _FIGURES if isinstance(k, str))
        assert named == ["e1", "e2", "r1", "r2"]

    def test_every_registered_figure_has_seed_parameter(self):
        from repro.cli import _FIGURES

        for func in _FIGURES.values():
            assert "seed" in inspect.signature(func).parameters

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

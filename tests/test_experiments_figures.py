"""Smoke and trend tests for every figure function (scaled-down runs)."""

import pytest

from repro.experiments import (
    figure_04,
    figure_05,
    figure_06,
    figure_07,
    figure_08,
    figure_09,
    figure_10,
    figure_11,
    figure_12,
    figure_13,
    figure_14,
    figure_15,
    figure_16,
    figure_17,
    figure_18,
    figure_19,
)
from repro.experiments.config import DEFAULT_CONFIG

SMALL = DEFAULT_CONFIG.with_(
    deadlines=(120.0, 480.0, 1080.0),
    compromise_rates=(0.1, 0.3, 0.5),
)


def _final(series):
    return series.points[-1][1]


class TestDeliveryFigures:
    def test_figure_04_trends(self):
        result = figure_04(
            group_sizes=(1, 5), config=SMALL, graphs=2, sessions_per_graph=25, seed=0
        )
        assert result.labels == (
            "Analysis: g=1",
            "Analysis: g=5",
            "Simulation: g=1",
            "Simulation: g=5",
        )
        # larger groups deliver more, in both model and simulation
        assert _final(result.get("Analysis: g=5")) > _final(result.get("Analysis: g=1"))
        assert _final(result.get("Simulation: g=5")) > _final(
            result.get("Simulation: g=1")
        )

    def test_figure_05_trends(self):
        result = figure_05(
            onion_router_counts=(3, 10),
            config=SMALL,
            graphs=2,
            sessions_per_graph=25,
            seed=1,
        )
        # fewer onion routers deliver more
        assert _final(result.get("Analysis: 3 onions")) > _final(
            result.get("Analysis: 10 onions")
        )
        assert _final(result.get("Simulation: 3 onions")) >= _final(
            result.get("Simulation: 10 onions")
        )

    def test_figure_10_trends(self):
        result = figure_10(
            copy_counts=(1, 5), config=SMALL, graphs=2, sessions_per_graph=25, seed=2
        )
        assert _final(result.get("Analysis: L=5")) >= _final(
            result.get("Analysis: L=1")
        )
        assert _final(result.get("Simulation: L=5")) >= _final(
            result.get("Simulation: L=1")
        )


class TestCostFigure:
    def test_figure_11_ordering(self):
        result = figure_11(
            copy_counts=(1, 3),
            onion_router_counts=(3,),
            config=SMALL,
            graphs=1,
            sessions_per_graph=15,
            seed=3,
        )
        non_anon = result.get("Non-anonymous")
        analysis = result.get("Analysis: K=3")
        simulation = result.get("Simulation: K=3")
        for copies in (1.0, 3.0):
            # non-anonymous cheapest; simulation below the analytical bound
            assert non_anon.y_at(copies) < analysis.y_at(copies)
            assert simulation.y_at(copies) <= analysis.y_at(copies)
        # cost grows with L
        assert simulation.y_at(3.0) > simulation.y_at(1.0)


class TestSecurityFigures:
    def test_figure_06_analysis_close_to_simulation(self):
        result = figure_06(onion_router_counts=(3,), config=SMALL, trials=800, seed=4)
        for rate in SMALL.compromise_rates:
            model = result.get("Analysis: 3 onions").y_at(rate)
            sim = result.get("Simulation: 3 onions").y_at(rate)
            assert sim == pytest.approx(model, abs=0.05)

    def test_figure_07_decreasing_in_relays(self):
        result = figure_07(
            compromise_rates=(0.2,),
            onion_router_counts=(1, 5, 10),
            config=SMALL,
            trials=400,
            seed=5,
        )
        ys = result.get("Analysis: c/n=20%").ys
        assert list(ys) == sorted(ys, reverse=True)

    def test_figure_08_group_size_helps(self):
        result = figure_08(group_sizes=(1, 10), config=SMALL, trials=500, seed=6)
        assert _final(result.get("Analysis: g=10")) > _final(
            result.get("Analysis: g=1")
        )
        assert _final(result.get("Simulation: g=10")) > _final(
            result.get("Simulation: g=1")
        )

    def test_figure_09_increasing_in_group_size(self):
        result = figure_09(
            compromise_rates=(0.2,),
            group_sizes=(1, 5, 10),
            config=SMALL,
            trials=400,
            seed=7,
        )
        ys = result.get("Analysis: c/n=20%").ys
        assert list(ys) == sorted(ys)

    def test_figure_12_copies_hurt_anonymity(self):
        result = figure_12(copy_counts=(1, 5), config=SMALL, trials=500, seed=8)
        assert _final(result.get("Analysis: L=5")) < _final(
            result.get("Analysis: L=1")
        )
        assert _final(result.get("Simulation: L=5")) < _final(
            result.get("Simulation: L=1")
        )

    def test_figure_13_shape(self):
        result = figure_13(
            copy_counts=(1, 3),
            group_sizes=(2, 8),
            config=SMALL,
            trials=400,
            seed=9,
        )
        series = result.get("Analysis: L=1")
        assert series.y_at(8.0) > series.y_at(2.0)


class TestTraceFigures:
    def test_figure_14_reaches_high_delivery(self):
        result = figure_14(deadlines=(300.0, 900.0, 1800.0), sessions=20, seed=10)
        sim = result.get("Simulation: L=1")
        assert sim.y_at(1800.0) >= 0.6
        assert sim.ys == tuple(sorted(sim.ys))

    def test_figure_15_traceable_trend(self):
        result = figure_15(compromise_rates=(0.1, 0.4), trials=300, seed=11)
        sim = result.get("Simulation: 3 onions")
        assert sim.y_at(0.4) > sim.y_at(0.1)

    def test_figure_16_anonymity_trend(self):
        result = figure_16(compromise_rates=(0.1, 0.4), trials=300, seed=12)
        sim = result.get("Simulation: L=1")
        assert sim.y_at(0.4) < sim.y_at(0.1)

    def test_figure_17_plateau_and_growth(self):
        result = figure_17(
            copy_counts=(1,),
            deadlines=(256.0, 4096.0, 65536.0, 131072.0),
            sessions=25,
            seed=13,
        )
        sim = result.get("Simulation: L=1")
        assert sim.ys == tuple(sorted(sim.ys))
        # long deadlines (crossing the off-hours) must beat short ones
        assert sim.y_at(131072.0) > sim.y_at(256.0)

    def test_figure_18_close_to_model(self):
        result = figure_18(compromise_rates=(0.2,), trials=1500, seed=14)
        model = result.get("Analysis: 3 onions").y_at(0.2)
        sim = result.get("Simulation: 3 onions").y_at(0.2)
        assert sim == pytest.approx(model, abs=0.04)

    def test_figure_19_multicopy_ordering(self):
        result = figure_19(
            copy_counts=(1, 5), compromise_rates=(0.3,), trials=500, seed=15
        )
        assert result.get("Simulation: L=5").y_at(0.3) <= result.get(
            "Simulation: L=1"
        ).y_at(0.3)

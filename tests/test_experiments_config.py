"""Tests for the Table II configuration object."""

import pytest

from repro.experiments.config import DEFAULT_CONFIG, PaperConfig


class TestPaperConfig:
    def test_table_ii_defaults(self):
        config = DEFAULT_CONFIG
        assert config.n == 100
        assert config.mean_intercontact_range == (10.0, 360.0)
        assert config.onion_routers == 3
        assert config.copies == 1
        assert min(config.deadlines) == 60.0
        assert max(config.deadlines) == 1080.0

    def test_eta(self):
        assert DEFAULT_CONFIG.eta == 4

    def test_max_deadline(self):
        assert DEFAULT_CONFIG.max_deadline == 1080.0

    def test_with_override(self):
        changed = DEFAULT_CONFIG.with_(group_size=5)
        assert changed.group_size == 5
        assert changed.n == DEFAULT_CONFIG.n
        assert DEFAULT_CONFIG.group_size == 3  # original untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.n = 5

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n": 1},
            {"group_size": 0},
            {"group_size": 101},
            {"onion_routers": 0},
            {"copies": 0},
            {"deadlines": ()},
            {"deadlines": (0.0,)},
            {"default_compromise_rate": 1.0},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_(**overrides)

"""Integration tests: analytical models vs full protocol simulation.

These are the repo-level correctness statements: the paper's models must
describe what the simulated protocols actually do, within the approximation
gaps the paper itself reports.
"""

import numpy as np
import pytest

from repro.adversary.compromise import CompromiseModel
from repro.adversary.observer import observed_path_anonymity
from repro.adversary.tracer import PathTracer
from repro.analysis.anonymity import path_anonymity_exact
from repro.analysis.cost import multi_copy_cost_bound, single_copy_cost
from repro.analysis.hypoexponential import Hypoexponential
from repro.analysis.traceable import traceable_rate_model
from repro.contacts.events import ExponentialContactProcess
from repro.contacts.graph import ContactGraph
from repro.core.multi_copy import MultiCopySession
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.single_copy import SingleCopySession
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message
from repro.utils.rng import ensure_rng


def _run_sessions(graph, make_session, trials, horizon, seed):
    """Simulate many single-message sessions on independent event streams."""
    rng = ensure_rng(seed)
    outcomes = []
    for _ in range(trials):
        engine = SimulationEngine(
            ExponentialContactProcess(graph, rng=rng), horizon=horizon
        )
        session = make_session()
        engine.add_session(session)
        engine.run()
        outcomes.append(session.outcome())
    return outcomes


class TestDeliveryModelVsSimulation:
    def test_single_hop_is_exponential(self):
        """g=1, K=1 has no anycast approximation: model must match exactly."""
        graph = ContactGraph.complete(10, 0.02)
        route_groups = ((5,),)
        route = None
        from repro.core.route import OnionRoute

        route = OnionRoute(source=0, destination=9, group_ids=(0,), groups=route_groups)
        horizon = 150.0
        message = lambda: Message(0, 9, 0.0, horizon)
        outcomes = _run_sessions(
            graph,
            lambda: SingleCopySession(message(), route),
            trials=1500,
            horizon=horizon,
            seed=0,
        )
        sim_rate = np.mean([o.delivered for o in outcomes])
        model = Hypoexponential([0.02, 0.02]).cdf(horizon)
        assert sim_rate == pytest.approx(model, abs=0.04)

    def test_intermediate_hops_match_model(self):
        """All hops except the last have exact anycast rates in simulation.

        Modelling trick: make the destination a 1-node 'group' adjacent to
        the last onion group with a very high rate so the last hop is
        negligible; then the model and protocol coincide.
        """
        rates = np.full((12, 12), 0.01)
        np.fill_diagonal(rates, 0.0)
        # destination 11 meets everyone extremely often
        rates[11, :] = rates[:, 11] = 1.0
        rates[11, 11] = 0.0
        graph = ContactGraph(rates)
        from repro.core.route import OnionRoute

        route = OnionRoute(
            source=0,
            destination=11,
            group_ids=(0, 1),
            groups=((1, 2, 3), (4, 5, 6)),
        )
        horizon = 80.0
        outcomes = _run_sessions(
            graph,
            lambda: SingleCopySession(Message(0, 11, 0.0, horizon), route),
            trials=1200,
            horizon=horizon,
            seed=1,
        )
        sim_rate = np.mean([o.delivered for o in outcomes])
        model = Hypoexponential(route.hop_rates(graph)).cdf(horizon)
        assert sim_rate == pytest.approx(model, abs=0.05)

    def test_model_is_optimistic_on_last_hop(self):
        """Eq. 4 sums member→destination rates although one carrier holds the
        message; the model therefore upper-bounds the simulation — the gap
        the paper reports in Figs. 4/5."""
        graph = ContactGraph.complete(20, 0.01)
        directory = OnionGroupDirectory(20, 5)
        route = directory.select_route(0, 19, 2, rng=1)
        horizon = 200.0
        outcomes = _run_sessions(
            graph,
            lambda: SingleCopySession(Message(0, 19, 0.0, horizon), route),
            trials=800,
            horizon=horizon,
            seed=2,
        )
        sim_rate = np.mean([o.delivered for o in outcomes])
        model = Hypoexponential(route.hop_rates(graph)).cdf(horizon)
        assert model >= sim_rate - 0.03

    def test_multicopy_improves_delivery(self):
        graph = ContactGraph.complete(30, 0.005)
        directory = OnionGroupDirectory(30, 5)
        route = directory.select_route(0, 29, 2, rng=3)
        horizon = 150.0

        def rate_for(copies):
            outcomes = _run_sessions(
                graph,
                lambda: MultiCopySession(
                    Message(0, 29, 0.0, horizon), route, copies=copies
                ),
                trials=600,
                horizon=horizon,
                seed=copies,
            )
            return np.mean([o.delivered for o in outcomes])

        assert rate_for(5) > rate_for(1) + 0.05


class TestCostModelVsSimulation:
    def test_single_copy_cost_exact(self):
        graph = ContactGraph.complete(20, 0.05)
        directory = OnionGroupDirectory(20, 5)
        route = directory.select_route(0, 19, 2, rng=4)
        outcomes = _run_sessions(
            graph,
            lambda: SingleCopySession(Message(0, 19, 0.0, 5000.0), route),
            trials=100,
            horizon=5000.0,
            seed=5,
        )
        for outcome in outcomes:
            assert outcome.delivered
            assert outcome.transmissions == single_copy_cost(2)

    def test_multicopy_cost_within_bound(self):
        graph = ContactGraph.complete(30, 0.05)
        directory = OnionGroupDirectory(30, 6)
        route = directory.select_route(0, 29, 3, rng=6)
        copies = 4
        outcomes = _run_sessions(
            graph,
            lambda: MultiCopySession(
                Message(0, 29, 0.0, 5000.0), route, copies=copies
            ),
            trials=100,
            horizon=5000.0,
            seed=7,
        )
        bound = multi_copy_cost_bound(3, copies)
        for outcome in outcomes:
            assert outcome.transmissions <= bound


class TestSecurityModelsVsProtocolPaths:
    """Security models vs paths produced by the *actual* protocol runs."""

    def _protocol_paths(self, copies, trials, seed):
        graph = ContactGraph.complete(40, 0.05)
        directory = OnionGroupDirectory(40, 5, rng=seed)
        rng = ensure_rng(seed)
        runs = []
        for _ in range(trials):
            source, destination = 0, 39
            route = directory.select_route(source, destination, 3, rng=rng)
            engine = SimulationEngine(
                ExponentialContactProcess(graph, rng=rng), horizon=10000.0
            )
            if copies == 1:
                session = SingleCopySession(
                    Message(source, destination, 0.0, 10000.0), route
                )
            else:
                session = MultiCopySession(
                    Message(source, destination, 0.0, 10000.0), route, copies=copies
                )
            engine.add_session(session)
            engine.run()
            outcome = session.outcome()
            if outcome.delivered:
                runs.append(outcome.paths)
        return runs

    def test_traceable_rate_on_real_paths(self):
        runs = self._protocol_paths(copies=1, trials=400, seed=8)
        rate = 0.2
        model = CompromiseModel(40, rate)
        rng = ensure_rng(9)
        values = []
        for paths in runs:
            tracer = PathTracer(model.sample_bernoulli(rng=rng))
            values.append(tracer.traceable_rate(paths[0]))
        assert np.mean(values) == pytest.approx(
            traceable_rate_model(4, rate), abs=0.03
        )

    def test_anonymity_on_real_multicopy_paths(self):
        runs = self._protocol_paths(copies=3, trials=250, seed=10)
        rate = 0.2
        model = CompromiseModel(40, rate)
        rng = ensure_rng(11)
        observed = []
        for paths in runs:
            compromised = model.sample_bernoulli(rng=rng)
            observed.append(
                observed_path_anonymity(paths, compromised, n=40, eta=4, group_size=5)
            )
        # Eq. 20 treats all η positions as L-fold exposed, but the real
        # protocol shares one source across copies: position 1 is exposed
        # with probability p only. The refined expectation matches closely;
        # the paper's Eq. 20 is a (slightly pessimistic) lower bound.
        exposure_eq20 = 4 * (1 - (1 - rate) ** 3)
        exposure_refined = rate + 3 * (1 - (1 - rate) ** 3)
        lower_bound = path_anonymity_exact(40, 4, 5, exposure_eq20)
        refined = path_anonymity_exact(40, 4, 5, exposure_refined)
        mean_observed = np.mean(observed)
        assert mean_observed == pytest.approx(refined, abs=0.05)
        assert mean_observed >= lower_bound - 0.02


class TestBaselineSanity:
    def test_epidemic_dominates_onion_routing(self):
        from repro.routing.epidemic import EpidemicSession

        graph = ContactGraph.complete(20, 0.005)
        directory = OnionGroupDirectory(20, 5)
        route = directory.select_route(0, 19, 2, rng=12)
        horizon = 100.0
        onion = _run_sessions(
            graph,
            lambda: SingleCopySession(Message(0, 19, 0.0, horizon), route),
            trials=400,
            horizon=horizon,
            seed=13,
        )
        epidemic = _run_sessions(
            graph,
            lambda: EpidemicSession(Message(0, 19, 0.0, horizon)),
            trials=400,
            horizon=horizon,
            seed=14,
        )
        onion_rate = np.mean([o.delivered for o in onion])
        epidemic_rate = np.mean([o.delivered for o in epidemic])
        assert epidemic_rate > onion_rate

    def test_direct_delivery_matches_exponential(self):
        from repro.routing.direct import DirectDeliverySession

        graph = ContactGraph.complete(5, 0.02)
        horizon = 60.0
        outcomes = _run_sessions(
            graph,
            lambda: DirectDeliverySession(Message(0, 4, 0.0, horizon)),
            trials=1500,
            horizon=horizon,
            seed=15,
        )
        sim = np.mean([o.delivered for o in outcomes])
        assert sim == pytest.approx(1 - np.exp(-0.02 * horizon), abs=0.04)

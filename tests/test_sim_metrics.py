"""Tests for delivery outcomes and aggregation."""

import math

import pytest

from repro.sim.metrics import (
    DeliveryOutcome,
    delivery_rate_curve,
    status_counts,
    summarize,
)


def _delivered(time, created_at=0.0, transmissions=3):
    return DeliveryOutcome(
        delivered=True,
        delivery_time=time,
        transmissions=transmissions,
        paths=[[0, 1, 2]],
        created_at=created_at,
    )


def _failed(transmissions=1):
    return DeliveryOutcome(delivered=False, transmissions=transmissions)


class TestDeliveryOutcome:
    def test_delay_for_delivered(self):
        assert _delivered(30.0).delay == 30.0

    def test_delay_relative_to_creation(self):
        assert _delivered(130.0, created_at=100.0).delay == 30.0

    def test_delay_inf_for_failed(self):
        assert _failed().delay == math.inf

    def test_delivered_path(self):
        assert _delivered(1.0).delivered_path == [0, 1, 2]
        assert _failed().delivered_path is None


class TestSummarize:
    def test_basic_aggregation(self):
        stats = summarize([_delivered(10.0), _delivered(30.0), _failed()])
        assert stats.trials == 3
        assert stats.delivery_rate == pytest.approx(2 / 3)
        assert stats.mean_delay == pytest.approx(20.0)

    def test_mean_transmissions_counts_failures(self):
        stats = summarize([_delivered(10.0, transmissions=4), _failed(2)])
        assert stats.mean_transmissions == pytest.approx(3.0)

    def test_all_failed_gives_nan_delay(self):
        stats = summarize([_failed(), _failed()])
        assert math.isnan(stats.mean_delay)
        assert stats.delivery_rate == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestDeliveryRateCurve:
    def test_curve_counts_delays(self):
        outcomes = [_delivered(10.0), _delivered(50.0), _failed()]
        curve = delivery_rate_curve(outcomes, [20.0, 60.0])
        assert curve == [(20.0, pytest.approx(1 / 3)), (60.0, pytest.approx(2 / 3))]

    def test_curve_uses_relative_delay(self):
        outcomes = [_delivered(150.0, created_at=100.0)]
        curve = delivery_rate_curve(outcomes, [40.0, 60.0])
        assert curve == [(40.0, 0.0), (60.0, 1.0)]

    def test_monotone_in_deadline(self):
        outcomes = [_delivered(float(t)) for t in (5, 15, 25, 35)]
        curve = delivery_rate_curve(outcomes, [10.0, 20.0, 30.0, 40.0])
        rates = [rate for _, rate in curve]
        assert rates == sorted(rates)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            delivery_rate_curve([], [10.0])


class TestStatusCounts:
    def test_explicit_statuses_tallied(self):
        outcomes = [
            DeliveryOutcome(status="delivered", delivered=True, delivery_time=5.0),
            DeliveryOutcome(status="dropped", lost_copies=1),
            DeliveryOutcome(status="dropped", lost_copies=2),
            DeliveryOutcome(status="failed"),
        ]
        assert status_counts(outcomes) == {
            "delivered": 1,
            "dropped": 2,
            "failed": 1,
        }

    def test_legacy_delivered_normalised(self):
        # Pre-fault sessions set only the flags, never status.
        legacy = DeliveryOutcome(delivered=True, delivery_time=3.0)
        assert legacy.status == "pending"
        assert status_counts([legacy]) == {"delivered": 1}

    def test_legacy_expired_normalised(self):
        legacy = DeliveryOutcome(expired_copies=2)
        assert status_counts([legacy]) == {"expired": 1}

    def test_pending_stays_pending(self):
        assert status_counts([DeliveryOutcome()]) == {"pending": 1}

    def test_empty_batch(self):
        assert status_counts([]) == {}

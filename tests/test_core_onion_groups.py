"""Tests for onion-group formation and route selection."""

import numpy as np
import pytest

from repro.core.onion_groups import OnionGroupDirectory


class TestPartition:
    def test_even_partition(self):
        directory = OnionGroupDirectory(20, 5)
        assert directory.group_count == 4
        assert all(len(members) == 5 for members in directory.groups)

    def test_uneven_partition_last_group_smaller(self):
        directory = OnionGroupDirectory(10, 3)
        sizes = [len(members) for members in directory.groups]
        assert sizes == [3, 3, 3, 1]

    def test_partition_covers_all_nodes_once(self):
        directory = OnionGroupDirectory(23, 4, rng=0)
        seen = [node for members in directory.groups for node in members]
        assert sorted(seen) == list(range(23))

    def test_group_of_consistent(self):
        directory = OnionGroupDirectory(20, 5, rng=1)
        for gid, members in enumerate(directory.groups):
            for node in members:
                assert directory.group_of(node) == gid

    def test_deterministic_without_rng(self):
        directory = OnionGroupDirectory(10, 5)
        assert directory.groups == ((0, 1, 2, 3, 4), (5, 6, 7, 8, 9))

    def test_shuffled_with_rng(self):
        shuffled = OnionGroupDirectory(30, 5, rng=2)
        assert shuffled.groups != OnionGroupDirectory(30, 5).groups

    def test_group_size_exceeding_n_rejected(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            OnionGroupDirectory(5, 6)

    def test_members_accessor(self):
        directory = OnionGroupDirectory(10, 5)
        assert directory.members(1) == (5, 6, 7, 8, 9)


class TestRouteSelection:
    def test_route_shape(self):
        directory = OnionGroupDirectory(100, 5, rng=0)
        route = directory.select_route(0, 99, 3, rng=0)
        assert route.onion_routers == 3
        assert route.eta == 4
        assert len(set(route.group_ids)) == 3

    def test_endpoint_groups_avoided_by_default(self):
        directory = OnionGroupDirectory(100, 5, rng=1)
        for seed in range(20):
            route = directory.select_route(0, 99, 5, rng=seed)
            for members in route.groups:
                assert 0 not in members
                assert 99 not in members

    def test_endpoint_groups_allowed_when_disabled(self):
        directory = OnionGroupDirectory(12, 4, rng=2)
        # only 3 groups exist; K=3 is only feasible without avoidance
        route = directory.select_route(
            0, 11, 3, rng=0, avoid_endpoint_groups=False
        )
        assert route.onion_routers == 3

    def test_infeasible_selection_raises(self):
        directory = OnionGroupDirectory(12, 4, rng=3)
        with pytest.raises(ValueError, match="cannot pick"):
            directory.select_route(0, 11, 3, rng=0)

    def test_same_endpoints_rejected(self):
        directory = OnionGroupDirectory(20, 5)
        with pytest.raises(ValueError, match="differ"):
            directory.select_route(3, 3, 2)

    def test_selection_is_random(self):
        directory = OnionGroupDirectory(100, 5, rng=4)
        ids = {directory.select_route(0, 99, 3, rng=s).group_ids for s in range(30)}
        assert len(ids) > 1

    def test_route_groups_match_directory_members(self):
        directory = OnionGroupDirectory(100, 5, rng=5)
        route = directory.select_route(0, 99, 3, rng=6)
        for gid, members in zip(route.group_ids, route.groups):
            assert members == directory.members(gid)


class TestKeyMaterial:
    MASTER = b"directory-master"

    def test_full_keyring_covers_all_groups(self):
        directory = OnionGroupDirectory(20, 5)
        keyring = directory.build_keyring(self.MASTER)
        assert len(keyring) == directory.group_count

    def test_node_keyring_holds_only_own_group(self):
        directory = OnionGroupDirectory(20, 5, rng=0)
        node = 7
        keyring = directory.node_keyring(self.MASTER, node)
        assert keyring.group_ids == (directory.group_of(node),)

    def test_node_key_matches_full_keyring(self):
        directory = OnionGroupDirectory(20, 5, rng=1)
        full = directory.build_keyring(self.MASTER)
        node = 13
        gid = directory.group_of(node)
        member = directory.node_keyring(self.MASTER, node)
        assert member.key_for(gid) == full.key_for(gid)

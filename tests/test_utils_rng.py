"""Tests for RNG coercion and spawning."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passes_through(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="expected None"):
            ensure_rng("seed")


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(ensure_rng(0), 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rng(ensure_rng(0), 2)
        assert not np.array_equal(children[0].random(10), children[1].random(10))

    def test_spawn_deterministic_given_seed(self):
        a = spawn_rng(ensure_rng(5), 3)
        b = spawn_rng(ensure_rng(5), 3)
        for child_a, child_b in zip(a, b):
            assert np.array_equal(child_a.random(4), child_b.random(4))

    def test_zero_children_allowed(self):
        assert spawn_rng(ensure_rng(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rng(ensure_rng(0), -1)

"""Tests for greedy utility forwarding."""

import numpy as np
import pytest

from repro.contacts.graph import ContactGraph
from repro.routing.utility import GreedyUtilitySession
from repro.sim.message import Message

from tests.helpers import feed


def _graph():
    # utilities toward destination 4: node0=0.01, node1=0.05, node2=0.2, node3=0
    rates = np.zeros((5, 5))
    rates[0, 4] = rates[4, 0] = 0.01
    rates[1, 4] = rates[4, 1] = 0.05
    rates[2, 4] = rates[4, 2] = 0.2
    # connect everyone loosely so contacts are plausible
    for i in range(4):
        for j in range(i + 1, 4):
            rates[i, j] = rates[j, i] = 0.02
    return ContactGraph(rates)


def _message(deadline=100.0):
    return Message(source=0, destination=4, created_at=0.0, deadline=deadline)


class TestGreedyUtility:
    def test_forwards_uphill(self):
        session = GreedyUtilitySession(_message(), _graph())
        feed(session, [(1.0, 0, 1)])
        assert session.holder == 1
        feed(session, [(2.0, 1, 2)])
        assert session.holder == 2

    def test_refuses_downhill(self):
        session = GreedyUtilitySession(_message(), _graph())
        feed(session, [(1.0, 0, 1), (2.0, 1, 0)])  # back toward worse node
        assert session.holder == 1

    def test_refuses_zero_utility_node(self):
        session = GreedyUtilitySession(_message(), _graph())
        feed(session, [(1.0, 0, 3)])  # node 3 never meets the destination
        assert session.holder == 0

    def test_threshold_blocks_small_gains(self):
        session = GreedyUtilitySession(_message(), _graph(), threshold=0.1)
        feed(session, [(1.0, 0, 1)])  # gain 0.04 < 0.1
        assert session.holder == 0
        feed(session, [(2.0, 0, 2)])  # gain 0.19 > 0.1
        assert session.holder == 2

    def test_direct_delivery(self):
        session = GreedyUtilitySession(_message(), _graph())
        feed(session, [(1.0, 0, 4)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.transmissions == 1

    def test_deadline(self):
        session = GreedyUtilitySession(_message(deadline=1.0), _graph())
        feed(session, [(2.0, 0, 4)])
        assert session.done
        assert not session.outcome().delivered

    def test_transfers_recorded(self):
        session = GreedyUtilitySession(_message(), _graph())
        feed(session, [(1.0, 0, 1), (2.0, 1, 4)])
        assert session.outcome().transfers == [(1.0, 0, 1), (2.0, 1, 4)]

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            GreedyUtilitySession(_message(), _graph(), threshold=-1.0)

    def test_beats_direct_delivery_statistically(self):
        """Utility forwarding should deliver faster than waiting at a
        low-utility source."""
        from repro.contacts.events import ExponentialContactProcess
        from repro.routing.direct import DirectDeliverySession
        from repro.sim.engine import SimulationEngine

        graph = _graph()
        rng = np.random.default_rng(0)
        horizon = 120.0

        def rate(factory):
            delivered = 0
            for _ in range(400):
                engine = SimulationEngine(
                    ExponentialContactProcess(graph, rng=rng), horizon=horizon
                )
                session = factory()
                engine.add_session(session)
                engine.run()
                delivered += session.outcome().delivered
            return delivered / 400

        greedy = rate(lambda: GreedyUtilitySession(_message(horizon), graph))
        direct = rate(lambda: DirectDeliverySession(_message(horizon)))
        assert greedy > direct

"""Additional property-based suites across the substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contacts.graph import ContactGraph
from repro.contacts.traces import ContactRecord, ContactTrace
from repro.core.onion_groups import OnionGroupDirectory
from repro.experiments.result import FigureResult, Series
from repro.sim.workload import PoissonWorkload
from repro.utils.rng import ensure_rng


def _graph_from_upper(values, n):
    rates = np.zeros((n, n))
    index = 0
    for i in range(n):
        for j in range(i + 1, n):
            rates[i, j] = rates[j, i] = values[index % len(values)]
            index += 1
    return ContactGraph(rates) if n >= 2 else None


class TestContactGraphProperties:
    @given(
        n=st.integers(min_value=3, max_value=12),
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_anycast_rate_is_additive(self, n, values):
        graph = _graph_from_upper(values, n)
        members = list(range(1, n))
        whole = graph.anycast_rate(0, members)
        split = graph.anycast_rate(0, members[: n // 2]) + graph.anycast_rate(
            0, members[n // 2 :]
        )
        assert whole == pytest.approx(split)

    @given(
        n=st.integers(min_value=3, max_value=10),
        values=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=20
        ),
        deadline=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_contact_probability_bounds(self, n, values, deadline):
        graph = _graph_from_upper(values, n)
        p = graph.contact_probability(0, 1, deadline)
        assert 0.0 <= p <= 1.0

    @given(
        n=st.integers(min_value=3, max_value=10),
        values=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=20
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_group_to_group_symmetric_for_equal_groups(self, n, values):
        graph = _graph_from_upper(values, n)
        half = n // 2
        a, b = list(range(half)), list(range(half, n))
        forward = graph.group_to_group_rate(a, b) * len(a)
        backward = graph.group_to_group_rate(b, a) * len(b)
        # total pairwise mass is direction-independent
        assert forward == pytest.approx(backward)


class TestDirectoryProperties:
    @given(
        n=st.integers(min_value=6, max_value=60),
        group_size=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=120, deadline=None)
    def test_partition_is_exact(self, n, group_size, seed):
        if group_size > n:
            return
        directory = OnionGroupDirectory(n, group_size, rng=seed)
        seen = sorted(
            node for members in directory.groups for node in members
        )
        assert seen == list(range(n))
        sizes = [len(members) for members in directory.groups]
        assert all(size == group_size for size in sizes[:-1])
        assert 1 <= sizes[-1] <= group_size

    @given(
        seed=st.integers(min_value=0, max_value=500),
        onion_routers=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_routes_always_valid(self, seed, onion_routers):
        directory = OnionGroupDirectory(60, 5, rng=seed)
        route = directory.select_route(0, 59, onion_routers, rng=seed)
        assert len(set(route.group_ids)) == onion_routers
        for members in route.groups:
            assert 0 not in members
            assert 59 not in members


class TestTraceProperties:
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 8),
                st.integers(0, 8),
                st.floats(min_value=0, max_value=1000),
                st.floats(min_value=0, max_value=100),
            ).filter(lambda r: r[0] != r[1]),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_serialisation_roundtrip(self, rows):
        trace = ContactTrace(
            ContactRecord(a=a, b=b, start=s, end=s + d) for a, b, s, d in rows
        )
        again = ContactTrace.loads(trace.dumps())
        assert len(again) == len(trace)
        assert [r.pair() for r in again] == [r.pair() for r in trace]

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 8),
                st.integers(0, 8),
                st.floats(min_value=0, max_value=1000),
            ).filter(lambda r: r[0] != r[1]),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_normalized_is_idempotent(self, rows):
        trace = ContactTrace(
            ContactRecord(a=a, b=b, start=s, end=s + 1) for a, b, s in rows
        )
        once = trace.normalized()
        twice = once.normalized()
        assert once.records == twice.records

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 6),
                st.integers(0, 6),
                st.floats(min_value=0, max_value=1000),
            ).filter(lambda r: r[0] != r[1]),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_contact_counts_sum_to_total(self, rows):
        trace = ContactTrace(
            ContactRecord(a=a, b=b, start=s, end=s + 1) for a, b, s in rows
        )
        assert sum(trace.contact_counts().values()) == len(trace)


class TestWorkloadProperties:
    @given(
        rate=st.floats(min_value=0.01, max_value=1.0),
        duration=st.floats(min_value=10.0, max_value=500.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_messages_sorted_distinct_endpoints(self, rate, duration, seed):
        workload = PoissonWorkload(
            arrival_rate=rate, message_deadline=10.0, duration=duration
        )
        messages = workload.generate_messages(20, ensure_rng(seed))
        times = [m.created_at for m in messages]
        assert times == sorted(times)
        for message in messages:
            assert message.source != message.destination
            assert 0 <= message.created_at <= duration


class TestFigureResultProperties:
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=1),
            ),
            min_size=1,
            max_size=15,
            unique_by=lambda p: p[0],
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_table_contains_every_point(self, points):
        figure = FigureResult(
            figure_id="F",
            title="t",
            x_label="x",
            y_label="y",
            series=(Series(label="S", points=tuple(points)),),
        )
        table = figure.to_table()
        for _, y in points:
            assert f"{y:.4f}" in table

    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=1),
            ),
            min_size=1,
            max_size=15,
            unique_by=lambda p: p[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_json_roundtrip_any_figure(self, points):
        from repro.experiments.persistence import figure_from_dict, figure_to_dict

        figure = FigureResult(
            figure_id="F",
            title="t",
            x_label="x",
            y_label="y",
            series=(Series(label="S", points=tuple(points)),),
        )
        assert figure_from_dict(figure_to_dict(figure)) == figure

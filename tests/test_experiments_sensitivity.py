"""Tests for the sensitivity sweeps."""

import pytest

from repro.experiments.sensitivity import (
    density_sensitivity,
    network_size_sensitivity,
)


class TestNetworkSizeSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return network_size_sensitivity(sizes=(30, 100, 300), routes=15, seed=1)

    def test_series_present(self, result):
        assert set(result.labels) == {
            "Delivery (Eq. 6)",
            "Path anonymity D",
            "Residual entropy H (bits)",
            "Traceable rate",
        }

    def test_absolute_entropy_grows_with_n(self, result):
        ys = result.get("Residual entropy H (bits)").ys
        assert list(ys) == sorted(ys)

    def test_anonymity_ratio_slightly_falls_with_n(self, result):
        """D = H/H_max: a compromised hop keeps log2(g) bits regardless of
        n, an ever smaller share of a clean hop's log2(n) bits."""
        ys = result.get("Path anonymity D").ys
        assert list(ys) == sorted(ys, reverse=True)

    def test_traceable_rate_independent_of_n(self, result):
        ys = result.get("Traceable rate").ys
        assert max(ys) - min(ys) < 1e-12

    def test_delivery_roughly_flat(self, result):
        ys = result.get("Delivery (Eq. 6)").ys
        assert max(ys) - min(ys) < 0.25


class TestDensitySensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return density_sensitivity(
            densities=(0.1, 0.5, 1.0), routes=15, seed=2
        )

    def test_delivery_increases_with_density(self, result):
        ys = result.get("Delivery (Eq. 6)").ys
        assert list(ys) == sorted(ys)

    def test_sparse_graphs_hurt(self, result):
        series = result.get("Delivery (Eq. 6)")
        assert series.y_at(0.1) < series.y_at(1.0)

"""Smoke tests for the robustness figures (small sessions, small graph)."""

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.robustness_figs import figure_r1, figure_r2

SMALL = PaperConfig(n=20, onion_routers=2)


@pytest.fixture(scope="module")
def fig_r1():
    return figure_r1(
        config=SMALL,
        availabilities=(1.0, 0.5),
        deadline=300.0,
        sessions=20,
        seed=30,
    )


@pytest.fixture(scope="module")
def fig_r2():
    # 60 sessions, not 20: test_blackhole_hurts compares two empirical
    # delivery rates, and at 20 sessions the +-1/sqrt(n) noise swamps the
    # blackhole effect for many seeds.
    return figure_r2(
        config=SMALL,
        drop_probs=(0.0, 1.0),
        deadline=300.0,
        sessions=60,
        seed=31,
    )


class TestFigureR1:
    def test_series_labels(self, fig_r1):
        labels = [series.label for series in fig_r1.series]
        assert labels == [
            "Analysis: Eq. 6 on churned graph",
            "Simulation: node churn",
            "Simulation: churned graph",
        ]

    def test_x_axis_is_availability(self, fig_r1):
        for series in fig_r1.series:
            assert set(series.xs) <= {1.0, 0.5}

    def test_values_are_probabilities(self, fig_r1):
        for series in fig_r1.series:
            assert all(0.0 <= y <= 1.0 for y in series.ys)

    def test_full_availability_point_present(self, fig_r1):
        # At a = 1 the churn schedule is skipped and the point is the
        # fault-free batch — still plotted as the curve's anchor.
        churn = next(s for s in fig_r1.series if s.label == "Simulation: node churn")
        assert 1.0 in churn.xs


class TestFigureR2:
    def test_series_labels(self, fig_r2):
        labels = [series.label for series in fig_r2.series]
        assert labels == [
            "Analysis: survival-scaled Eq. 6",
            "Simulation: no recovery",
            "Simulation: custody recovery",
        ]

    def test_values_are_probabilities(self, fig_r2):
        for series in fig_r2.series:
            assert all(0.0 <= y <= 1.0 for y in series.ys)

    def test_blackhole_hurts(self, fig_r2):
        plain = next(
            s for s in fig_r2.series if s.label == "Simulation: no recovery"
        )
        assert plain.y_at(1.0) <= plain.y_at(0.0)

"""Tests for the traceable-rate metric and models (paper Eq. 1, 8–12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.traceable import (
    expected_run_length,
    path_bits,
    segment_lengths,
    traceable_rate_empirical,
    traceable_rate_model,
    traceable_rate_paper_series,
)


class TestSegmentLengths:
    @pytest.mark.parametrize(
        "bits, expected",
        [
            ([0, 0, 0], []),
            ([1, 1, 1], [3]),
            ([1, 1, 0, 1], [2, 1]),
            ([0, 1, 1, 1, 0], [3]),
            ([1, 0, 1, 0, 1], [1, 1, 1]),
        ],
    )
    def test_runs(self, bits, expected):
        assert segment_lengths(bits) == expected

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            segment_lengths([0, 2, 1])


class TestEmpiricalTraceableRate:
    def test_paper_example_scattered(self):
        """v1, v2, v4 compromised on a 4-hop path: bits 1101 → 5/16."""
        assert traceable_rate_empirical([1, 1, 0, 1]) == pytest.approx(0.3125)

    def test_paper_example_consecutive(self):
        """v2, v3, v4 compromised: bits 0111 → 9/16 = 0.5625."""
        assert traceable_rate_empirical([0, 1, 1, 1]) == pytest.approx(0.5625)

    def test_consecutive_worse_than_scattered(self):
        scattered = traceable_rate_empirical([1, 0, 1, 0, 1, 0])
        consecutive = traceable_rate_empirical([1, 1, 1, 0, 0, 0])
        assert consecutive > scattered

    def test_bounds(self):
        assert traceable_rate_empirical([0, 0, 0, 0]) == 0.0
        assert traceable_rate_empirical([1, 1, 1, 1]) == 1.0

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            traceable_rate_empirical([])


class TestPathBits:
    def test_maps_compromised_senders(self):
        bits = path_bits([10, 11, 12, 13], {11, 13})
        assert bits == [0, 1, 0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            path_bits([], set())


class TestModel:
    def test_zero_compromise(self):
        assert traceable_rate_model(4, 0.0) == 0.0

    def test_full_compromise(self):
        assert traceable_rate_model(4, 1.0) == pytest.approx(1.0)

    def test_monotone_in_compromise_rate(self):
        values = [traceable_rate_model(4, p) for p in (0.1, 0.2, 0.3, 0.5)]
        assert values == sorted(values)

    def test_decreasing_in_hops(self):
        """More onion relays dilute each disclosure (paper Fig. 7)."""
        values = [traceable_rate_model(eta, 0.2) for eta in (2, 4, 6, 11)]
        assert values == sorted(values, reverse=True)

    def test_single_hop_closed_form(self):
        # η=1: E[P] = p
        assert traceable_rate_model(1, 0.3) == pytest.approx(0.3)

    def test_two_hops_closed_form(self):
        # η=2: E[Σℓ²] = 2p + 2p²; bits 11 has weight 4, 10/01 weight 1 each.
        p = 0.3
        expected = (2 * p + 2 * p * p) / 4
        assert traceable_rate_model(2, p) == pytest.approx(expected)

    @pytest.mark.parametrize("eta", [2, 4, 6, 11])
    @pytest.mark.parametrize("p", [0.05, 0.15, 0.35])
    def test_model_matches_monte_carlo(self, eta, p):
        """The exact expectation must match brute-force simulation."""
        rng = np.random.default_rng(eta * 100 + int(p * 100))
        trials = 40000
        bits = rng.random((trials, eta)) < p
        total = 0.0
        for row in bits:
            total += traceable_rate_empirical(row.astype(int).tolist())
        empirical = total / trials
        assert traceable_rate_model(eta, p) == pytest.approx(empirical, abs=0.006)


class TestPaperSeries:
    def test_close_to_exact_model_when_c_small(self):
        """The paper's Eq. 8–12 approximation holds for c ≪ n."""
        for eta in (4, 6, 11):
            for p in (0.02, 0.05, 0.1):
                exact = traceable_rate_model(eta, p)
                approx = traceable_rate_paper_series(eta, p)
                assert approx == pytest.approx(exact, rel=0.25, abs=0.01)

    def test_zero_compromise(self):
        assert traceable_rate_paper_series(4, 0.0) == 0.0

    def test_clipped_to_one(self):
        assert traceable_rate_paper_series(2, 0.99) <= 1.0


class TestExpectedRunLength:
    def test_small_p_approximates_geometric_mean(self):
        # Untruncated geometric run: E[X] = p/(1-p)
        p = 0.1
        assert expected_run_length(p, 50) == pytest.approx(p / (1 - p), rel=1e-3)

    def test_truncation_reduces(self):
        assert expected_run_length(0.5, 2) < expected_run_length(0.5, 20)


class TestProperties:
    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40)
    )
    @settings(max_examples=200, deadline=None)
    def test_empirical_rate_in_unit_interval(self, bits):
        assert 0.0 <= traceable_rate_empirical(bits) <= 1.0

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40)
    )
    @settings(max_examples=200, deadline=None)
    def test_run_lengths_sum_to_popcount(self, bits):
        assert sum(segment_lengths(bits)) == sum(bits)

    @given(
        eta=st.integers(min_value=1, max_value=20),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_model_in_unit_interval(self, eta, p):
        assert 0.0 <= traceable_rate_model(eta, p) <= 1.0 + 1e-12

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=30),
        index=st.integers(min_value=0, max_value=29),
    )
    @settings(max_examples=200, deadline=None)
    def test_compromising_one_more_node_never_decreases(self, bits, index):
        if index >= len(bits):
            index = index % len(bits)
        more = list(bits)
        more[index] = 1
        assert traceable_rate_empirical(more) >= traceable_rate_empirical(bits)

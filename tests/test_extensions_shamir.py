"""Tests for Shamir secret sharing over GF(2⁸)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.shamir import (
    Share,
    combine_shares,
    gf_div,
    gf_mul,
    split_secret,
)


class TestFieldArithmetic:
    def test_mul_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a

    def test_mul_zero(self):
        assert gf_mul(0, 77) == 0
        assert gf_mul(77, 0) == 0

    def test_mul_commutative(self):
        assert gf_mul(87, 131) == gf_mul(131, 87)

    def test_known_aes_product(self):
        # 0x57 * 0x83 = 0xC1 in the AES field (FIPS-197 example)
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_div_inverts_mul(self):
        for a in (1, 7, 100, 255):
            for b in (1, 3, 200, 254):
                assert gf_div(gf_mul(a, b), b) == a

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)


class TestSplitCombine:
    SECRET = b"the commander is at grid 43-N"

    def test_exact_threshold_reconstructs(self):
        shares = split_secret(self.SECRET, shares=5, threshold=3, rng=0)
        assert combine_shares(shares[:3]) == self.SECRET

    def test_any_subset_of_threshold_size_works(self):
        shares = split_secret(self.SECRET, shares=5, threshold=3, rng=1)
        import itertools

        for subset in itertools.combinations(shares, 3):
            assert combine_shares(subset) == self.SECRET

    def test_more_than_threshold_works(self):
        shares = split_secret(self.SECRET, shares=5, threshold=3, rng=2)
        assert combine_shares(shares) == self.SECRET

    def test_below_threshold_yields_garbage(self):
        shares = split_secret(self.SECRET, shares=5, threshold=3, rng=3)
        assert combine_shares(shares[:2]) != self.SECRET

    def test_single_share_reveals_nothing_statistically(self):
        """With threshold >= 2 a share byte is uniform: flipping the secret
        changes nothing observable from one share alone (same rng)."""
        a = split_secret(b"\x00" * 64, shares=3, threshold=2, rng=42)[0]
        b = split_secret(b"\xff" * 64, shares=3, threshold=2, rng=42)[0]
        # same polynomial randomness, different secrets: share differs, but
        # each byte is still masked (the xor equals the secret xor shifted
        # through the field, never the plaintext itself for index != 0)
        assert a.data != b.data

    def test_threshold_one_is_replication(self):
        shares = split_secret(self.SECRET, shares=4, threshold=1, rng=4)
        for share in shares:
            assert combine_shares([share]) == self.SECRET

    def test_empty_secret(self):
        shares = split_secret(b"", shares=3, threshold=2, rng=5)
        assert combine_shares(shares[:2]) == b""

    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            split_secret(b"x", shares=3, threshold=4)

    def test_too_many_shares(self):
        with pytest.raises(ValueError, match="255"):
            split_secret(b"x", shares=256, threshold=2)

    def test_non_bytes_secret(self):
        with pytest.raises(TypeError):
            split_secret("text", shares=3, threshold=2)


class TestCombineValidation:
    def test_duplicate_indices_rejected(self):
        share = Share(index=1, data=b"ab")
        with pytest.raises(ValueError, match="duplicate"):
            combine_shares([share, share])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            combine_shares([Share(index=1, data=b"ab"), Share(index=2, data=b"a")])

    def test_no_shares_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            combine_shares([])

    def test_bad_index(self):
        with pytest.raises(ValueError, match="1..255"):
            Share(index=0, data=b"x")


class TestProperties:
    @given(
        secret=st.binary(max_size=128),
        shares=st.integers(min_value=1, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_any_secret(self, secret, shares, data):
        threshold = data.draw(st.integers(min_value=1, max_value=shares))
        pieces = split_secret(secret, shares=shares, threshold=threshold, rng=0)
        chosen = data.draw(
            st.permutations(pieces).map(lambda p: p[:threshold])
        )
        assert combine_shares(chosen) == secret

"""The streaming consume mode must equal one-shot kernels, bit for bit.

``consume="stream"`` drains the event source window by window through
:func:`~repro.contacts.events.stream_event_blocks` and invokes the batch
kernels once per window. Because the kernels compose across successive
``run`` calls (they rebuild per-session candidate state each call and
skip finished sessions), a windowed drain must reproduce the one-shot
kernel outcomes exactly — including sessions whose TTL or delivery spans
a window boundary. These tests pin that equivalence, the memory-ceiling
knobs, and the generator's own windowing arithmetic.
"""

import numpy as np
import pytest

from repro.contacts.events import (
    ColumnarEventSource,
    EventBlock,
    ExponentialContactProcess,
    stream_event_blocks,
)
from repro.contacts.random_graph import random_contact_graph
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.single_copy import SingleCopySession
from repro.experiments.runners import run_random_graph_batch
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message
from repro.sim.metrics import status_counts


def batch_fields(pairs):
    return [
        (
            o.delivered,
            o.delivery_time,
            o.transmissions,
            o.expired_copies,
            o.lost_copies,
            o.created_at,
            o.status,
            tuple(tuple(p) for p in o.paths),
            tuple(o.transfers),
        )
        for _, o in pairs
    ]


@pytest.fixture
def graph():
    return random_contact_graph(
        30, (10.0, 120.0), rng=np.random.default_rng(13)
    )


# ----------------------------------------------------------------------
# stream_event_blocks: the windowing generator itself
# ----------------------------------------------------------------------


class TestStreamEventBlocks:
    def _source(self, graph, horizon=480.0):
        process = ExponentialContactProcess(
            graph, rng=np.random.default_rng(21)
        )
        return ColumnarEventSource(process.events_until_columnar(horizon))

    def test_concatenation_equals_one_shot(self, graph):
        one_shot = self._source(graph).events_until_columnar(480.0)
        windows = list(
            stream_event_blocks(self._source(graph), 480.0, window=60.0)
        )
        assert all(isinstance(w, EventBlock) for w in windows)
        np.testing.assert_array_equal(
            np.concatenate([w.times for w in windows]), one_shot.times
        )
        np.testing.assert_array_equal(
            np.concatenate([w.a for w in windows]), one_shot.a
        )
        np.testing.assert_array_equal(
            np.concatenate([w.b for w in windows]), one_shot.b
        )

    def test_ceiling_bounds_every_window(self, graph):
        one_shot = self._source(graph).events_until_columnar(480.0)
        windows = list(
            stream_event_blocks(
                self._source(graph), 480.0, window=120.0, max_window_events=40
            )
        )
        assert max(len(w) for w in windows) <= 40
        np.testing.assert_array_equal(
            np.concatenate([w.times for w in windows]), one_shot.times
        )

    def test_window_span_adapts_downward(self, graph):
        # A huge first window blows the ceiling once; the span then shrinks
        # so later windows are produced near the ceiling, not sliced from
        # ever-larger one-shot pulls.
        pulls = []
        inner = self._source(graph)

        class Spy:
            def events_until_columnar(self, now):
                pulls.append(now)
                return inner.events_until_columnar(now)

        list(
            stream_event_blocks(
                Spy(), 480.0, window=240.0, max_window_events=25
            )
        )
        assert pulls[0] == 240.0
        assert len(pulls) > 3  # the span contracted after the first blowout
        assert pulls[1] - pulls[0] < 240.0

    def test_validates_arguments(self, graph):
        source = self._source(graph)
        with pytest.raises(ValueError):
            next(stream_event_blocks(source, 0.0, window=10.0))
        with pytest.raises(ValueError):
            next(stream_event_blocks(source, 100.0, window=-1.0))
        with pytest.raises(ValueError):
            next(
                stream_event_blocks(
                    source, 100.0, window=10.0, max_window_events=0
                )
            )


# ----------------------------------------------------------------------
# engine consume="stream": equivalence and observability
# ----------------------------------------------------------------------


def _run(graph, seed, consume, **engine_knobs):
    return run_random_graph_batch(
        graph,
        4,
        2,
        copies=1,
        horizon=360.0,
        sessions=40,
        rng=np.random.default_rng(seed),
        consume=consume,
        **engine_knobs,
    )


class TestStreamConsume:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_stream_matches_kernel_and_columnar(self, graph, seed):
        kernel = batch_fields(_run(graph, seed, "kernel"))
        columnar = batch_fields(_run(graph, seed, "columnar"))
        stream = batch_fields(_run(graph, seed, "stream", stream_window=45.0))
        assert stream == kernel == columnar

    def test_stream_matches_kernel_multicopy(self, graph):
        def run(consume, **knobs):
            return batch_fields(
                run_random_graph_batch(
                    graph, 4, 2, copies=3,
                    horizon=360.0, sessions=30,
                    rng=np.random.default_rng(7),
                    consume=consume, **knobs,
                )
            )

        assert run("stream", stream_window=30.0) == run("kernel")

    def test_stream_without_kernels_matches_columnar(self, graph):
        # kernel=False keeps the windowed drain but routes every session
        # through the columnar object loop — outcomes stay identical.
        stream = batch_fields(
            _run(graph, 5, "stream", stream_window=45.0, kernel=False)
        )
        assert stream == batch_fields(_run(graph, 5, "columnar"))

    def test_ttl_spanning_window_boundary(self, graph):
        # Tiny windows force every session's delivery/expiry to happen many
        # windows after its creation; the composed outcomes must not drift.
        stream = batch_fields(_run(graph, 17, "stream", stream_window=5.0))
        kernel = batch_fields(_run(graph, 17, "kernel"))
        assert stream == kernel
        assert status_counts([]) == {}

    def test_event_ceiling_matches_unbounded(self, graph):
        bounded = batch_fields(
            _run(
                graph, 23, "stream", stream_window=90.0, max_window_events=16
            )
        )
        assert bounded == batch_fields(_run(graph, 23, "kernel"))


class TestStreamEngineInternals:
    def _engine_and_sessions(self, graph, deadline=300.0, **knobs):
        rng = np.random.default_rng(41)
        directory = OnionGroupDirectory(graph.n, 4, rng=rng)
        process = ExponentialContactProcess(graph, rng=rng)
        engine = SimulationEngine(
            process, horizon=300.0, consume="stream", **knobs
        )
        sessions = []
        for _ in range(20):
            src, dst = rng.choice(graph.n, size=2, replace=False)
            route = directory.select_route(int(src), int(dst), 2, rng=rng)
            session = SingleCopySession(
                Message(
                    source=int(src), destination=int(dst),
                    created_at=0.0, deadline=deadline,
                ),
                route,
            )
            engine.add_session(session)
            sessions.append(session)
        return engine, sessions

    def test_stream_stats_report_windows_and_peak(self, graph):
        engine, _ = self._engine_and_sessions(
            graph, stream_window=30.0, max_window_events=32
        )
        engine.run()
        windows, peak = engine.stream_stats
        assert windows >= 2
        assert 0 < peak <= 32

    def test_early_exit_when_all_sessions_finish(self, graph):
        # With a deadline far short of the horizon everything delivers or
        # expires early; the drain must stop rather than pull empty
        # windows all the way to the horizon.
        engine, sessions = self._engine_and_sessions(
            graph, deadline=100.0, stream_window=10.0
        )
        engine.run()
        assert all(s.done for s in sessions)
        windows, _ = engine.stream_stats
        assert windows < 20  # 300.0 / 10.0 windows would mean no early exit

    def test_stream_counts_dispatch_modes(self, graph):
        engine, _ = self._engine_and_sessions(graph, stream_window=30.0)
        engine.run()
        assert engine.dispatch_mode_counts.get("kernel-single", 0) == 20

    def test_iterator_source_falls_back(self, graph):
        class IteratorOnly:
            def __init__(self, block):
                self._block = block

            def events_until(self, horizon):
                return iter(
                    ColumnarEventSource(self._block).events_until(horizon)
                )

        block = ExponentialContactProcess(
            graph, rng=np.random.default_rng(41)
        ).events_until_columnar(300.0)

        rng = np.random.default_rng(41)
        directory = OnionGroupDirectory(graph.n, 4, rng=rng)
        # Consume the process pre-draw position exactly as the fixture did.
        ExponentialContactProcess(graph, rng=rng)
        outcomes = {}
        for label, source in (
            ("stream", ColumnarEventSource(block)),
            ("iterator", IteratorOnly(block)),
        ):
            session_rng = np.random.default_rng(41)
            OnionGroupDirectory(graph.n, 4, rng=session_rng)
            engine = SimulationEngine(
                source, horizon=300.0, consume="stream", stream_window=30.0
            )
            placement = np.random.default_rng(8)
            sessions = []
            for _ in range(10):
                src, dst = placement.choice(graph.n, size=2, replace=False)
                route = directory.select_route(
                    int(src), int(dst), 2, rng=np.random.default_rng(9)
                )
                session = SingleCopySession(
                    Message(
                        source=int(src), destination=int(dst),
                        created_at=0.0, deadline=300.0,
                    ),
                    route,
                )
                engine.add_session(session)
                sessions.append(session)
            engine.run()
            outcomes[label] = [
                (s.outcome().delivered, s.outcome().delivery_time)
                for s in sessions
            ]
        assert outcomes["stream"] == outcomes["iterator"]

    def test_stream_knob_validation(self, graph):
        process = ExponentialContactProcess(
            graph, rng=np.random.default_rng(1)
        )
        with pytest.raises(ValueError):
            SimulationEngine(
                process, horizon=100.0, consume="stream", stream_window=-5.0
            )
        with pytest.raises(ValueError):
            SimulationEngine(
                process, horizon=100.0, consume="stream", max_window_events=0
            )

"""Tests for the hypoexponential distribution (paper Eq. 5/6 machinery)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hypoexponential import Hypoexponential


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Hypoexponential([])

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_rejects_bad_rate(self, bad):
        with pytest.raises(ValueError, match="positive"):
            Hypoexponential([0.1, bad])

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            Hypoexponential([0.1], method="magic")

    def test_properties(self):
        dist = Hypoexponential([0.5, 0.25])
        assert dist.stages == 2
        assert dist.mean() == pytest.approx(2.0 + 4.0)
        assert dist.var() == pytest.approx(4.0 + 16.0)


class TestSingleStage:
    """One stage must reduce exactly to the exponential distribution."""

    def test_cdf_matches_exponential(self):
        dist = Hypoexponential([0.2])
        for t in (0.0, 1.0, 5.0, 20.0):
            assert dist.cdf(t) == pytest.approx(1 - math.exp(-0.2 * t))

    def test_pdf_matches_exponential(self):
        dist = Hypoexponential([0.2])
        assert dist.pdf(3.0) == pytest.approx(0.2 * math.exp(-0.6))


class TestCoefficients:
    def test_sum_to_one(self):
        dist = Hypoexponential([0.1, 0.3, 0.7])
        assert dist.coefficients().sum() == pytest.approx(1.0)

    def test_two_stage_known_values(self):
        # A_1 = λ2/(λ2-λ1), A_2 = λ1/(λ1-λ2)
        dist = Hypoexponential([1.0, 2.0])
        coeffs = dist.coefficients()
        assert coeffs[0] == pytest.approx(2.0)
        assert coeffs[1] == pytest.approx(-1.0)

    def test_repeated_rates_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            Hypoexponential([0.5, 0.5]).coefficients()


class TestCdf:
    def test_zero_at_zero(self):
        assert Hypoexponential([0.1, 0.2]).cdf(0.0) == 0.0

    def test_approaches_one(self):
        assert Hypoexponential([0.1, 0.2]).cdf(1e5) == pytest.approx(1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Hypoexponential([0.1]).cdf(-1.0)

    def test_array_input(self):
        dist = Hypoexponential([0.1, 0.2])
        values = dist.cdf([1.0, 10.0, 100.0])
        assert values.shape == (3,)
        assert (np.diff(values) >= 0).all()

    def test_matrix_equals_closed_form_when_distinct(self):
        rates = [0.05, 0.11, 0.3]
        closed = Hypoexponential(rates, method="closed-form")
        matrix = Hypoexponential(rates, method="matrix")
        for t in (1.0, 10.0, 50.0, 200.0):
            assert closed.cdf(t) == pytest.approx(matrix.cdf(t), abs=1e-9)

    def test_equal_rates_use_matrix_and_match_erlang(self):
        """All-equal rates give an Erlang distribution."""
        from scipy.stats import erlang

        dist = Hypoexponential([0.2, 0.2, 0.2])
        for t in (1.0, 5.0, 20.0):
            assert dist.cdf(t) == pytest.approx(
                erlang.cdf(t, a=3, scale=5.0), abs=1e-9
            )

    def test_nearly_equal_rates_stable(self):
        dist = Hypoexponential([0.2, 0.2 * (1 + 1e-9), 0.2 * (1 + 2e-9)])
        value = dist.cdf(10.0)
        assert 0.0 <= value <= 1.0

    def test_sf_complements_cdf(self):
        dist = Hypoexponential([0.1, 0.4])
        assert dist.sf(7.0) == pytest.approx(1 - dist.cdf(7.0))


class TestSampling:
    def test_sample_mean_matches(self):
        dist = Hypoexponential([0.1, 0.2])
        draws = dist.sample(size=20000, rng=0)
        assert draws.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_sample_cdf_agreement(self):
        dist = Hypoexponential([0.05, 0.2, 0.4])
        draws = dist.sample(size=20000, rng=1)
        t = 20.0
        assert (draws <= t).mean() == pytest.approx(dist.cdf(t), abs=0.02)

    def test_bad_size(self):
        with pytest.raises(ValueError, match="size"):
            Hypoexponential([0.1]).sample(size=0)


class TestPdf:
    def test_integrates_to_cdf(self):
        dist = Hypoexponential([0.1, 0.3])
        grid = np.linspace(0, 60, 4000)
        integral = np.trapezoid(dist.pdf(grid), grid)
        assert integral == pytest.approx(dist.cdf(60.0), abs=1e-3)

    def test_matrix_pdf_matches_closed_form(self):
        rates = [0.1, 0.3]
        closed = Hypoexponential(rates, method="closed-form")
        matrix = Hypoexponential(rates, method="matrix")
        assert closed.pdf(5.0) == pytest.approx(matrix.pdf(5.0), abs=1e-9)


class TestProperties:
    """Property-based invariants over random rate vectors."""

    @given(
        rates=st.lists(
            st.floats(min_value=1e-3, max_value=10.0), min_size=1, max_size=6
        ),
        t=st.floats(min_value=0.0, max_value=1e3),
    )
    @settings(max_examples=120, deadline=None)
    def test_cdf_in_unit_interval(self, rates, t):
        value = Hypoexponential(rates).cdf(t)
        assert 0.0 <= value <= 1.0

    @given(
        rates=st.lists(
            st.floats(min_value=1e-3, max_value=10.0), min_size=1, max_size=5
        ),
        t1=st.floats(min_value=0.0, max_value=500.0),
        t2=st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_cdf_monotone(self, rates, t1, t2):
        lo, hi = sorted((t1, t2))
        dist = Hypoexponential(rates)
        assert dist.cdf(lo) <= dist.cdf(hi) + 1e-12

    @given(
        rates=st.lists(
            st.floats(min_value=1e-2, max_value=5.0),
            min_size=2,
            max_size=5,
            unique=True,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_adding_a_stage_slows_delivery(self, rates):
        """More hops can only reduce P[delay <= t] (stochastic dominance)."""
        shorter = Hypoexponential(rates[:-1])
        longer = Hypoexponential(rates)
        for t in (1.0, 10.0, 100.0):
            assert longer.cdf(t) <= shorter.cdf(t) + 1e-9


class TestDerivedQuantityCaching:
    """coefficients() and the uniformized DTMC are computed at most once."""

    def test_coefficients_cached(self):
        dist = Hypoexponential([0.5, 1.0, 2.0])
        first = dist.coefficients()
        assert dist.coefficients() is first

    def test_transition_cached(self):
        dist = Hypoexponential([1.0, 1.0, 1.0], method="matrix")
        first = dist._uniformized_transition()
        assert dist._uniformized_transition() is first

    def test_cached_cdf_matches_fresh_instance(self):
        times = [1.0, 10.0, 100.0]
        dist = Hypoexponential([0.3, 0.7, 1.3])
        warm = [dist.cdf(t) for t in times]  # second sweep hits the caches
        warm = [dist.cdf(t) for t in times]
        fresh = [Hypoexponential([0.3, 0.7, 1.3]).cdf(t) for t in times]
        assert warm == fresh

"""Tests for node buffers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.message import Message
from repro.sim.node import Buffer, Node, NodeRegistry


class TestBuffer:
    def test_put_get(self):
        buffer = Buffer()
        buffer.put(1, "state")
        assert buffer.get(1) == "state"
        assert 1 in buffer

    def test_remove(self):
        buffer = Buffer()
        buffer.put(1)
        buffer.remove(1)
        assert 1 not in buffer

    def test_remove_absent_is_noop(self):
        Buffer().remove(99)

    def test_missing_get_raises(self):
        with pytest.raises(KeyError):
            Buffer().get(1)

    def test_capacity_evicts_oldest(self):
        buffer = Buffer(capacity=2)
        buffer.put(1)
        buffer.put(2)
        buffer.put(3)
        assert 1 not in buffer
        assert 2 in buffer and 3 in buffer
        assert buffer.drops == 1

    def test_refresh_does_not_evict(self):
        buffer = Buffer(capacity=2)
        buffer.put(1)
        buffer.put(2)
        buffer.put(1, "updated")
        assert len(buffer) == 2
        assert buffer.get(1) == "updated"
        assert buffer.drops == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Buffer(capacity=0)

    @given(
        capacity=st.integers(min_value=1, max_value=10),
        inserts=st.lists(st.integers(0, 30), max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_capacity(self, capacity, inserts):
        buffer = Buffer(capacity=capacity)
        for message_id in inserts:
            buffer.put(message_id)
            assert len(buffer) <= capacity


class TestNode:
    def test_holds(self):
        node = Node(node_id=3)
        message = Message(source=0, destination=1, created_at=0, deadline=1)
        assert not node.holds(message)
        node.buffer.put(message.message_id)
        assert node.holds(message)


class TestNodeRegistry:
    def test_lazy_creation(self):
        registry = NodeRegistry()
        node = registry[7]
        assert node.node_id == 7
        assert registry[7] is node

    def test_shared_capacity(self):
        registry = NodeRegistry(buffer_capacity=1)
        registry[0].buffer.put(1)
        registry[0].buffer.put(2)
        assert len(registry[0].buffer) == 1

    def test_known_lists_touched_nodes(self):
        registry = NodeRegistry()
        registry[1]
        registry[5]
        assert sorted(n.node_id for n in registry.known()) == [1, 5]

"""Cross-subsystem integration: pipelines that span many packages."""

import numpy as np
import pytest

from repro.contacts.community import CommunityConfig, community_contact_graph
from repro.contacts.events import ExponentialContactProcess, TraceReplayProcess
from repro.contacts.impairments import ThinnedContactProcess, thinned_graph
from repro.contacts.intercontact import estimate_rates_from_trace
from repro.contacts.mobility import RandomWaypointConfig, random_waypoint_trace
from repro.contacts.statistics import pooled_exponential_fit, summarize_trace
from repro.core.group_management import ManagedGroupDirectory
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.route_selection import RateAwareSelector
from repro.core.single_copy import SingleCopySession
from repro.crypto.onion import build_onion, pad_blob, peel_onion
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message
from repro.sim.workload import PoissonWorkload, onion_session_factory


class TestMobilityToModelPipeline:
    """Motion → trace → rates → routing → models, end to end."""

    @pytest.fixture(scope="class")
    def trace(self):
        config = RandomWaypointConfig(
            width=150.0, height=150.0, radio_range=20.0,
            min_speed=1.0, max_speed=3.0, pause_time=10.0,
        )
        return random_waypoint_trace(15, duration=4000.0, config=config, rng=0)

    def test_trace_statistics_sane(self, trace):
        summary = summarize_trace(trace)
        assert summary.nodes <= 15
        assert summary.density > 0.5

    def test_replayed_protocol_delivers(self, trace):
        normalized = trace.normalized()
        n = normalized.n
        directory = OnionGroupDirectory(n, 3, rng=1)
        delivered = 0
        trials = 15
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            source, destination = rng.choice(n, size=2, replace=False)
            try:
                route = directory.select_route(
                    int(source), int(destination), 2, rng=rng
                )
            except ValueError:
                continue
            message = Message(
                int(source), int(destination), created_at=0.0,
                deadline=normalized.end,
            )
            session = SingleCopySession(message, route)
            engine = SimulationEngine(
                TraceReplayProcess(normalized), horizon=normalized.end + 1
            )
            engine.add_session(session)
            engine.run()
            delivered += session.outcome().delivered
        assert delivered > 0

    def test_estimated_graph_feeds_models(self, trace):
        graph = estimate_rates_from_trace(trace.normalized())
        from repro.analysis.delivery import delivery_rate

        directory = OnionGroupDirectory(graph.n, 3, rng=2)
        route = directory.select_route(0, graph.n - 1, 2, rng=2)
        p = delivery_rate(graph, 0, route.groups, graph.n - 1, 2000.0)
        assert 0.0 <= p <= 1.0


class TestCommunityWorkloadPipeline:
    def test_workload_on_community_graph(self):
        config = CommunityConfig(
            communities=3, community_size=10,
            intra_rate=0.1, inter_rate=0.002,
            bridge_fraction=0.2, bridge_rate=0.05,
        )
        community = community_contact_graph(config, rng=3)
        directory = OnionGroupDirectory(community.graph.n, 5, rng=3)
        workload = PoissonWorkload(
            arrival_rate=0.05, message_deadline=500.0, duration=300.0
        )
        result = workload.run(
            community.graph,
            onion_session_factory(directory, onion_routers=2, rng=3),
            rng=3,
        )
        assert result.stats.delivery_rate > 0.3

    def test_rate_aware_selection_on_community_graph(self):
        """Rate-aware routing exploits community structure (bridges)."""
        config = CommunityConfig(
            communities=3, community_size=10,
            intra_rate=0.1, inter_rate=0.001,
            bridge_fraction=0.2, bridge_rate=0.05,
        )
        community = community_contact_graph(config, rng=4)
        directory = OnionGroupDirectory(30, 5, rng=4)
        selector = RateAwareSelector(
            directory, community.graph, reference_deadline=200.0,
            candidates=8, rng=4,
        )
        route = selector.select(0, 29, 2)
        assert route.onion_routers == 2


class TestManagedGroupsWithProtocol:
    def test_churned_groups_still_route_and_peel(self):
        """Membership churn, then a fresh onion routes under current keys."""
        directory = ManagedGroupDirectory(b"pipeline-master", group_count=4)
        for node, group in [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (6, 2)]:
            directory.join(node, group)
        directory.leave(2, 0)
        directory.join(7, 0)

        keyring = directory.routing_keyring((0, 1, 2))
        onion = build_onion([0, 1, 2], destination=9, payload=b"m", keyring=keyring)
        blob = onion.blob
        carriers = {0: 7, 1: 3, 2: 5}  # a current member per group
        for group_id in (0, 1, 2):
            carrier = carriers[group_id]
            key = directory.node_key(
                carrier, group_id, directory.epoch(group_id)
            )
            layer = peel_onion(blob, key)
            blob = pad_blob(layer.inner, onion.wire_size)
        assert layer.is_final
        assert layer.destination == 9


class TestImpairedDeliveryPipeline:
    def test_thinning_consistency_through_workload(self):
        from repro.contacts.graph import ContactGraph

        graph = ContactGraph.complete(20, 0.05)
        directory = OnionGroupDirectory(20, 4, rng=5)
        route = directory.select_route(0, 19, 2, rng=5)
        horizon = 250.0
        drop = 0.4
        rng = np.random.default_rng(6)
        delivered = 0
        trials = 500
        for _ in range(trials):
            process = ThinnedContactProcess(
                ExponentialContactProcess(graph, rng=rng), drop, rng=rng
            )
            engine = SimulationEngine(process, horizon=horizon)
            session = SingleCopySession(Message(0, 19, 0.0, horizon), route)
            engine.add_session(session)
            engine.run()
            delivered += session.outcome().delivered
        from repro.analysis.hypoexponential import Hypoexponential
        from repro.extensions.refined_models import refined_onion_path_rates

        model = Hypoexponential(
            refined_onion_path_rates(thinned_graph(graph, drop), 0,
                                     route.groups, 19)
        ).cdf(horizon)
        assert delivered / trials == pytest.approx(model, abs=0.06)


class TestSyntheticTraceDiagnostics:
    def test_cambridge_like_business_hours_fit(self):
        """Within a single business day, gaps are near-exponential."""
        from repro.contacts.synthetic import cambridge_like_trace
        from repro.contacts.traces import ContactTrace

        trace = cambridge_like_trace(days=1, rng=7)
        fit = pooled_exponential_fit(trace)
        # one business window: no overnight outliers; the fit is plausible
        assert fit.rate > 0
        assert fit.sample_count > 100

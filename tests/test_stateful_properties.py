"""Stateful property tests (hypothesis rule-based state machines).

These drive long random operation sequences against the stateful
components — the buffer and the managed group directory — checking
invariants after every step.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.group_management import ManagedGroupDirectory, MembershipError
from repro.sim.node import Buffer

CAPACITY = 5


class BufferMachine(RuleBasedStateMachine):
    """A bounded buffer must mirror an ordered-dict model with eviction."""

    def __init__(self):
        super().__init__()
        self.buffer = Buffer(capacity=CAPACITY)
        self.model: list[int] = []  # insertion-ordered message ids
        self.expected_drops = 0

    @rule(message_id=st.integers(min_value=0, max_value=20))
    def put(self, message_id):
        if message_id in self.model:
            self.buffer.put(message_id)
            return
        if len(self.model) >= CAPACITY:
            self.model.pop(0)
            self.expected_drops += 1
        self.model.append(message_id)
        self.buffer.put(message_id)

    @rule(message_id=st.integers(min_value=0, max_value=20))
    def remove(self, message_id):
        self.buffer.remove(message_id)
        if message_id in self.model:
            self.model.remove(message_id)

    @invariant()
    def contents_match_model(self):
        assert len(self.buffer) == len(self.model)
        for message_id in self.model:
            assert message_id in self.buffer

    @invariant()
    def capacity_respected(self):
        assert len(self.buffer) <= CAPACITY

    @invariant()
    def drops_counted(self):
        assert self.buffer.drops == self.expected_drops


class GroupMembershipMachine(RuleBasedStateMachine):
    """Epoch rekeying must preserve forward/backward secrecy invariants."""

    GROUPS = 3
    NODES = list(range(8))

    def __init__(self):
        super().__init__()
        self.directory = ManagedGroupDirectory(b"machine-master", self.GROUPS)
        self.member_of: dict[int, int] = {}

    @rule(
        node=st.sampled_from(NODES),
        group=st.integers(min_value=0, max_value=GROUPS - 1),
    )
    def join(self, node, group):
        if node in self.member_of:
            try:
                self.directory.join(node, group)
                raise AssertionError("double join must fail")
            except MembershipError:
                return
        self.directory.join(node, group)
        self.member_of[node] = group

    @rule(node=st.sampled_from(NODES))
    def leave(self, node):
        group = self.member_of.get(node)
        if group is None:
            try:
                self.directory.leave(node, 0)
                raise AssertionError("leaving when absent must fail")
            except MembershipError:
                return
        self.directory.leave(node, group)
        del self.member_of[node]

    @invariant()
    def membership_matches_model(self):
        for group in range(self.GROUPS):
            expected = sorted(
                node for node, g in self.member_of.items() if g == group
            )
            assert list(self.directory.members(group)) == expected

    @invariant()
    def current_members_hold_current_epoch(self):
        for node, group in self.member_of.items():
            epoch = self.directory.epoch(group)
            assert self.directory.node_can_peel(node, group, epoch)

    @invariant()
    def outsiders_lack_current_epoch(self):
        for group in range(self.GROUPS):
            epoch = self.directory.epoch(group)
            if epoch == 0:
                continue
            members = set(self.directory.members(group))
            for node in self.NODES:
                if node not in members:
                    assert not self.directory.node_can_peel(node, group, epoch)

    @invariant()
    def epochs_never_regress(self):
        history = self.directory.history()
        per_group: dict[int, int] = {}
        for entry in history:
            last = per_group.get(entry.group_id, 0)
            assert entry.epoch == last + 1
            per_group[entry.group_id] = entry.epoch


TestBufferMachine = BufferMachine.TestCase
TestGroupMembershipMachine = GroupMembershipMachine.TestCase

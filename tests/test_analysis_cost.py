"""Tests for the forwarding-cost bounds (paper §IV-C)."""

import pytest

from repro.analysis.cost import (
    multi_copy_cost_bound,
    multi_copy_first_hop_bound,
    non_anonymous_cost,
    single_copy_cost,
)


class TestSingleCopyCost:
    def test_k_plus_one(self):
        assert single_copy_cost(3) == 4
        assert single_copy_cost(10) == 11

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            single_copy_cost(0)


class TestMultiCopyBound:
    def test_formula(self):
        assert multi_copy_cost_bound(3, 5) == 25
        assert multi_copy_cost_bound(5, 2) == 14

    def test_monotone_in_copies(self):
        costs = [multi_copy_cost_bound(3, L) for L in range(1, 6)]
        assert costs == sorted(costs)

    def test_monotone_in_onions(self):
        costs = [multi_copy_cost_bound(k, 3) for k in range(1, 6)]
        assert costs == sorted(costs)

    def test_bound_dominates_exact_protocol_cost(self):
        """The protocol uses at most L·(K+1) transmissions; bound is (K+2)L."""
        for k in range(1, 8):
            for copies in range(1, 8):
                assert multi_copy_cost_bound(k, copies) >= copies * (k + 1)

    def test_first_hop_bound(self):
        assert multi_copy_first_hop_bound(1) == 1
        assert multi_copy_first_hop_bound(4) == 7


class TestNonAnonymousCost:
    def test_two_l(self):
        assert non_anonymous_cost(1) == 2
        assert non_anonymous_cost(5) == 10

    def test_always_cheapest(self):
        for copies in range(1, 6):
            assert non_anonymous_cost(copies) < multi_copy_cost_bound(1, copies)

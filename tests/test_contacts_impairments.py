"""Tests for contact-stream impairments."""

import numpy as np
import pytest

from repro.contacts.events import ExponentialContactProcess
from repro.contacts.graph import ContactGraph
from repro.contacts.impairments import (
    JitteredContactProcess,
    ThinnedContactProcess,
    thinned_graph,
)
from repro.faults.churn import NodeChurnProcess, NodeChurnSchedule, churned_graph


@pytest.fixture
def graph():
    return ContactGraph.complete(10, 0.05)


class TestThinning:
    def test_drop_rate_statistics(self, graph):
        base = ExponentialContactProcess(graph, rng=0)
        total = sum(1 for _ in base.events_until(2000.0))
        thinned = ThinnedContactProcess(
            ExponentialContactProcess(graph, rng=0), drop_prob=0.4, rng=1
        )
        kept = sum(1 for _ in thinned.events_until(2000.0))
        assert kept == pytest.approx(total * 0.6, rel=0.05)

    def test_zero_drop_is_identity(self, graph):
        base = list(ExponentialContactProcess(graph, rng=2).events_until(500.0))
        thinned = list(
            ThinnedContactProcess(
                ExponentialContactProcess(graph, rng=2), drop_prob=0.0, rng=3
            ).events_until(500.0)
        )
        assert base == thinned

    def test_full_drop_silences(self, graph):
        thinned = ThinnedContactProcess(
            ExponentialContactProcess(graph, rng=4), drop_prob=1.0, rng=5
        )
        assert list(thinned.events_until(500.0)) == []

    def test_thinned_graph_scales_rates(self, graph):
        scaled = thinned_graph(graph, 0.25)
        assert scaled.rate(0, 1) == pytest.approx(0.0375)

    def test_thinning_equivalence_with_model(self, graph):
        """Protocol on thinned events == model on the thinned graph."""
        from repro.core.onion_groups import OnionGroupDirectory
        from repro.core.single_copy import SingleCopySession
        from repro.sim.engine import SimulationEngine
        from repro.sim.message import Message
        from repro.analysis.hypoexponential import Hypoexponential
        from repro.extensions.refined_models import refined_onion_path_rates

        drop = 0.5
        directory = OnionGroupDirectory(10, 3)
        route = directory.select_route(0, 9, 1, rng=0)
        horizon = 300.0
        rng = np.random.default_rng(6)
        delivered = 0
        trials = 800
        for _ in range(trials):
            process = ThinnedContactProcess(
                ExponentialContactProcess(graph, rng=rng), drop, rng=rng
            )
            engine = SimulationEngine(process, horizon=horizon)
            session = SingleCopySession(Message(0, 9, 0.0, horizon), route)
            engine.add_session(session)
            engine.run()
            delivered += session.outcome().delivered
        model = Hypoexponential(
            refined_onion_path_rates(
                thinned_graph(graph, drop), 0, route.groups, 9
            )
        ).cdf(horizon)
        assert delivered / trials == pytest.approx(model, abs=0.05)


class TestJitter:
    def test_zero_jitter_is_identity(self, graph):
        base = list(ExponentialContactProcess(graph, rng=7).events_until(500.0))
        jittered = list(
            JitteredContactProcess(
                ExponentialContactProcess(graph, rng=7), max_jitter=0.0, rng=8
            ).events_until(500.0)
        )
        assert base == jittered

    def test_events_remain_chronological(self, graph):
        jittered = JitteredContactProcess(
            ExponentialContactProcess(graph, rng=9), max_jitter=5.0, rng=10
        )
        times = [event.time for event in jittered.events_until(500.0)]
        assert times == sorted(times)

    def test_jitter_is_non_negative(self, graph):
        base_events = list(
            ExponentialContactProcess(graph, rng=11).events_until(300.0)
        )
        jittered_events = list(
            JitteredContactProcess(
                ExponentialContactProcess(graph, rng=11), max_jitter=3.0, rng=12
            ).events_until(400.0)
        )
        # same multiset of pairs; every jittered event at or after an original
        assert len(jittered_events) >= len(base_events) - 5  # horizon spill

    def test_horizon_respected(self, graph):
        jittered = JitteredContactProcess(
            ExponentialContactProcess(graph, rng=13), max_jitter=10.0, rng=14
        )
        assert all(e.time <= 200.0 for e in jittered.events_until(200.0))


class TestStackedImpairments:
    """Satellite checks: impairments and faults compose cleanly."""

    def test_thin_jitter_churn_stack_stays_chronological(self, graph):
        schedule = NodeChurnSchedule.from_availability(10, 0.6, 15.0, rng=20)
        stacked = NodeChurnProcess(
            JitteredContactProcess(
                ThinnedContactProcess(
                    ExponentialContactProcess(graph, rng=21),
                    drop_prob=0.3,
                    rng=22,
                ),
                max_jitter=2.0,
                rng=23,
            ),
            schedule,
        )
        events = list(stacked.events_until(800.0))
        assert events  # the stack still produces contacts
        times = [event.time for event in events]
        assert times == sorted(times)
        assert all(time <= 800.0 for time in times)

    def test_thinned_churned_graph_matches_stacked_process(self, graph):
        """thinned_graph ∘ churned_graph predicts the stacked stream's rate."""
        drop, avail, horizon = 0.3, 0.7, 4000.0
        composed = thinned_graph(churned_graph(graph, avail), drop)
        # order of composition is irrelevant: both scale rates multiplicatively
        other = churned_graph(thinned_graph(graph, drop), avail)
        assert composed.rate(0, 1) == pytest.approx(other.rate(0, 1))

        model_count = sum(
            1
            for _ in ExponentialContactProcess(composed, rng=24).events_until(
                horizon
            )
        )
        schedule = NodeChurnSchedule.from_availability(10, avail, 5.0, rng=25)
        stacked = NodeChurnProcess(
            ThinnedContactProcess(
                ExponentialContactProcess(graph, rng=26), drop_prob=drop, rng=27
            ),
            schedule,
        )
        stacked_count = sum(1 for _ in stacked.events_until(horizon))
        assert stacked_count == pytest.approx(model_count, rel=0.1)

    def test_jitter_heap_output_matches_sorted_reference(self, graph):
        """The heap-based reorder buffer yields exactly the sorted jittered set."""
        inner = ExponentialContactProcess(graph, rng=28)
        reference = []
        rng = np.random.default_rng(29)
        for event in ExponentialContactProcess(graph, rng=28).events_until(300.0):
            shifted = event.time + rng.uniform(0.0, 5.0)
            if shifted <= 300.0:
                reference.append((shifted, event.a, event.b))
        reference.sort()

        jittered = JitteredContactProcess(inner, max_jitter=5.0, rng=29)
        produced = [(e.time, e.a, e.b) for e in jittered.events_until(300.0)]
        assert produced == sorted(produced)
        assert produced == pytest.approx(reference)

"""Tests for the Threshold Pivot Scheme."""

import numpy as np
import pytest

from repro.contacts.graph import ContactGraph
from repro.extensions.tps import (
    TpsRoute,
    TpsSession,
    select_tps_route,
    tps_delivery_model,
)
from repro.sim.message import Message

from tests.helpers import feed

# topology: source 0, relays 1..3, pivot 8, destination 9
ROUTE = TpsRoute(source=0, destination=9, relays=(1, 2, 3), pivot=8, threshold=2)


def _message(deadline=100.0, payload=None):
    return Message(
        source=0, destination=9, created_at=0.0, deadline=deadline, payload=payload
    )


class TestTpsRoute:
    def test_shares_count(self):
        assert ROUTE.shares == 3

    def test_relays_must_be_distinct(self):
        with pytest.raises(ValueError, match="distinct"):
            TpsRoute(source=0, destination=9, relays=(1, 1), pivot=8, threshold=1)

    def test_relays_exclude_special_nodes(self):
        with pytest.raises(ValueError, match="exclude"):
            TpsRoute(source=0, destination=9, relays=(8,), pivot=8, threshold=1)

    def test_threshold_range(self):
        with pytest.raises(ValueError, match="threshold"):
            TpsRoute(source=0, destination=9, relays=(1, 2), pivot=8, threshold=3)

    def test_pivot_not_endpoint(self):
        with pytest.raises(ValueError, match="pivot"):
            TpsRoute(source=0, destination=9, relays=(1,), pivot=9, threshold=1)

    def test_select_route_validity(self):
        route = select_tps_route(20, 0, 19, shares=4, threshold=2, rng=0)
        assert route.shares == 4
        assert route.pivot not in route.relays
        assert 0 not in route.relays and 19 not in route.relays

    def test_select_route_too_small_network(self):
        with pytest.raises(ValueError, match="eligible"):
            select_tps_route(4, 0, 3, shares=3, threshold=2, rng=0)


class TestForwarding:
    def test_full_delivery(self):
        session = TpsSession(_message(), ROUTE)
        feed(
            session,
            [
                (1.0, 0, 1),  # share 0 -> relay 1
                (2.0, 0, 2),  # share 1 -> relay 2
                (3.0, 1, 8),  # relay 1 -> pivot (1 of 2)
                (4.0, 2, 8),  # relay 2 -> pivot (2 of 2): reconstruct
                (5.0, 8, 9),  # pivot -> destination
            ],
        )
        outcome = session.outcome()
        assert session.reconstructed
        assert session.reconstruction_time == 4.0
        assert outcome.delivered
        assert outcome.delivery_time == 5.0
        assert outcome.transmissions == 5

    def test_pivot_cannot_deliver_before_threshold(self):
        session = TpsSession(_message(), ROUTE)
        feed(session, [(1.0, 0, 1), (2.0, 1, 8), (3.0, 8, 9)])
        assert not session.reconstructed
        assert not session.outcome().delivered

    def test_share_goes_only_to_designated_relay(self):
        session = TpsSession(_message(), ROUTE)
        feed(session, [(1.0, 0, 5)])  # node 5 is not a relay
        assert session.outcome().transmissions == 0

    def test_relay_holds_until_pivot(self):
        session = TpsSession(_message(), ROUTE)
        feed(session, [(1.0, 0, 1), (2.0, 1, 2), (3.0, 1, 9)])
        # relay 1 ignores everyone but the pivot
        assert session.shares_at_pivot == 0

    def test_deadline(self):
        session = TpsSession(_message(deadline=2.0), ROUTE)
        feed(session, [(1.0, 0, 1), (5.0, 1, 8)])
        assert session.done
        assert not session.outcome().delivered

    def test_endpoint_mismatch(self):
        bad = Message(source=1, destination=9, created_at=0, deadline=10)
        with pytest.raises(ValueError, match="do not match"):
            TpsSession(bad, ROUTE)


class TestRealShares:
    def test_payload_reconstructed_with_real_shamir_shares(self):
        payload = b"rendezvous at dawn"
        session = TpsSession(_message(payload=payload), ROUTE, rng=0)
        feed(
            session,
            [
                (1.0, 0, 1),
                (2.0, 0, 3),
                (3.0, 1, 8),
                (4.0, 3, 8),
                (5.0, 8, 9),
            ],
        )
        assert session.outcome().delivered
        assert session.reconstructed_payload == payload


class TestSecurityAccessors:
    def _delivered_session(self):
        session = TpsSession(_message(), ROUTE)
        feed(
            session,
            [(1.0, 0, 1), (2.0, 0, 2), (3.0, 1, 8), (4.0, 2, 8), (5.0, 8, 9)],
        )
        return session

    def test_pivot_compromise_reveals_destination(self):
        session = self._delivered_session()
        assert session.destination_exposed_to({8})
        assert not session.destination_exposed_to({1, 2, 3})

    def test_share_exposure_counts_relays(self):
        session = self._delivered_session()
        assert session.shares_exposed_to({1, 3}) == 2

    def test_payload_needs_threshold_relays(self):
        session = self._delivered_session()
        assert not session.payload_exposed_to({1})
        assert session.payload_exposed_to({1, 2})  # threshold = 2

    def test_compromised_pivot_after_reconstruction_exposes(self):
        session = self._delivered_session()
        assert session.payload_exposed_to({8})


class TestDeliveryModel:
    def test_model_matches_simulation(self):
        """The Monte Carlo model must match event-driven simulation."""
        graph = ContactGraph.complete(10, 0.05)
        deadline = 120.0
        model = tps_delivery_model(graph, ROUTE, deadline, samples=40000, rng=0)

        from repro.contacts.events import ExponentialContactProcess
        from repro.sim.engine import SimulationEngine

        rng = np.random.default_rng(1)
        delivered = 0
        trials = 1200
        for _ in range(trials):
            engine = SimulationEngine(
                ExponentialContactProcess(graph, rng=rng), horizon=deadline
            )
            session = TpsSession(_message(deadline=deadline), ROUTE)
            engine.add_session(session)
            engine.run()
            delivered += session.outcome().delivered
        assert delivered / trials == pytest.approx(model, abs=0.04)

    def test_unreachable_component_gives_zero(self):
        rates = np.zeros((10, 10))
        rates[0, 1] = rates[1, 0] = 0.1
        graph = ContactGraph(rates)
        assert tps_delivery_model(graph, ROUTE, 100.0, samples=10, rng=0) == 0.0

    def test_threshold_one_is_fastest(self):
        graph = ContactGraph.complete(10, 0.02)
        fast = tps_delivery_model(
            graph, TpsRoute(0, 9, (1, 2, 3), 8, threshold=1), 100.0,
            samples=20000, rng=0,
        )
        slow = tps_delivery_model(
            graph, TpsRoute(0, 9, (1, 2, 3), 8, threshold=3), 100.0,
            samples=20000, rng=0,
        )
        assert fast > slow

"""Tests for figure JSON persistence."""

import json

import pytest

from repro.experiments.persistence import (
    CheckpointStore,
    figure_from_dict,
    figure_to_dict,
    load_figure,
    run_checkpointed,
    save_figure,
)
from repro.experiments.result import FigureResult, Series


def _figure():
    return FigureResult(
        figure_id="Fig. P",
        title="Persistence test",
        x_label="x",
        y_label="y",
        series=(
            Series(label="A", points=((1.0, 0.5), (2.0, 0.75))),
            Series(label="B", points=((1.0, 0.25),)),
        ),
    )


class TestRoundtrip:
    def test_dict_roundtrip(self):
        figure = _figure()
        again = figure_from_dict(figure_to_dict(figure))
        assert again == figure

    def test_file_roundtrip(self, tmp_path):
        figure = _figure()
        path = tmp_path / "figure.json"
        save_figure(figure, path)
        assert load_figure(path) == figure

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "figure.json"
        save_figure(_figure(), path)
        payload = json.loads(path.read_text())
        assert payload["figure_id"] == "Fig. P"
        assert payload["series"][0]["points"] == [[1.0, 0.5], [2.0, 0.75]]


class TestValidation:
    def test_wrong_schema_version(self):
        payload = figure_to_dict(_figure())
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            figure_from_dict(payload)

    def test_missing_field(self):
        payload = figure_to_dict(_figure())
        del payload["title"]
        with pytest.raises(ValueError, match="missing field"):
            figure_from_dict(payload)

    def test_malformed_points(self):
        payload = figure_to_dict(_figure())
        payload["series"][0]["points"] = [[1.0]]
        with pytest.raises(ValueError):
            figure_from_dict(payload)


class TestAtomicSave:
    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "figure.json"
        save_figure(_figure(), path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_overwrite_is_complete(self, tmp_path):
        path = tmp_path / "figure.json"
        path.write_text("x" * 10_000)  # longer than the real payload
        save_figure(_figure(), path)
        assert load_figure(path) == _figure()  # no trailing garbage

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        path = tmp_path / "figure.json"
        save_figure(_figure(), path)
        original = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.experiments.persistence.os.replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            save_figure(_figure(), path)
        assert path.read_text() == original
        assert [p.name for p in tmp_path.iterdir()] == [path.name]


class TestCheckpointStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json")
        store.put("a=0.5", [1.0, 0.25])
        assert "a=0.5" in store
        assert store.get("a=0.5") == [1.0, 0.25]
        assert len(store) == 1

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "ckpt.json"
        CheckpointStore(path).put("k", {"delivered": 42})
        again = CheckpointStore(path)
        assert again.get("k") == {"delivered": 42}

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"schema_version": 99, "values": {}}))
        with pytest.raises(ValueError, match="schema version"):
            CheckpointStore(path)

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            CheckpointStore(tmp_path / "ckpt.json").get("nope")


class TestRunCheckpointed:
    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        """Acceptance: resume after a crash reproduces the uninterrupted file."""
        keys = ["a", "b", "c", "d"]

        def compute(key):
            return {"value": ord(key) * 0.25}

        # Reference: one uninterrupted run.
        clean = tmp_path / "clean.json"
        expected = run_checkpointed(keys, compute, clean)

        # Crash after two units of work...
        crashed = tmp_path / "crashed.json"
        calls = []

        def flaky(key):
            if len(calls) == 2:
                raise KeyboardInterrupt
            calls.append(key)
            return compute(key)

        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(keys, flaky, crashed)
        assert len(CheckpointStore(crashed)) == 2

        # ...then resume: only the remaining keys are computed, and the
        # final checkpoint is byte-identical to the uninterrupted one.
        resumed_calls = []

        def resumed(key):
            resumed_calls.append(key)
            return compute(key)

        values = run_checkpointed(keys, resumed, crashed)
        assert resumed_calls == ["c", "d"]
        assert values == expected
        assert crashed.read_bytes() == clean.read_bytes()

    def test_values_in_key_order(self, tmp_path):
        values = run_checkpointed(
            ["x", "y"], lambda k: k.upper(), tmp_path / "c.json"
        )
        assert values == ["X", "Y"]

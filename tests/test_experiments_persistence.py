"""Tests for figure JSON persistence."""

import json

import pytest

from repro.experiments.persistence import (
    figure_from_dict,
    figure_to_dict,
    load_figure,
    save_figure,
)
from repro.experiments.result import FigureResult, Series


def _figure():
    return FigureResult(
        figure_id="Fig. P",
        title="Persistence test",
        x_label="x",
        y_label="y",
        series=(
            Series(label="A", points=((1.0, 0.5), (2.0, 0.75))),
            Series(label="B", points=((1.0, 0.25),)),
        ),
    )


class TestRoundtrip:
    def test_dict_roundtrip(self):
        figure = _figure()
        again = figure_from_dict(figure_to_dict(figure))
        assert again == figure

    def test_file_roundtrip(self, tmp_path):
        figure = _figure()
        path = tmp_path / "figure.json"
        save_figure(figure, path)
        assert load_figure(path) == figure

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "figure.json"
        save_figure(_figure(), path)
        payload = json.loads(path.read_text())
        assert payload["figure_id"] == "Fig. P"
        assert payload["series"][0]["points"] == [[1.0, 0.5], [2.0, 0.75]]


class TestValidation:
    def test_wrong_schema_version(self):
        payload = figure_to_dict(_figure())
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            figure_from_dict(payload)

    def test_missing_field(self):
        payload = figure_to_dict(_figure())
        del payload["title"]
        with pytest.raises(ValueError, match="missing field"):
            figure_from_dict(payload)

    def test_malformed_points(self):
        payload = figure_to_dict(_figure())
        payload["series"][0]["points"] = [[1.0]]
        with pytest.raises(ValueError):
            figure_from_dict(payload)

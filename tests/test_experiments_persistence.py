"""Tests for figure JSON persistence."""

import json

import pytest

from repro.experiments.persistence import (
    CheckpointStore,
    figure_from_dict,
    figure_to_dict,
    load_figure,
    run_checkpointed,
    save_figure,
)
from repro.experiments.result import FigureResult, Series
from repro.utils.resilience import (
    CHECKPOINT_CORRUPT,
    CheckpointCorrupt,
    ExecutionReport,
)


def _figure():
    return FigureResult(
        figure_id="Fig. P",
        title="Persistence test",
        x_label="x",
        y_label="y",
        series=(
            Series(label="A", points=((1.0, 0.5), (2.0, 0.75))),
            Series(label="B", points=((1.0, 0.25),)),
        ),
    )


class TestRoundtrip:
    def test_dict_roundtrip(self):
        figure = _figure()
        again = figure_from_dict(figure_to_dict(figure))
        assert again == figure

    def test_file_roundtrip(self, tmp_path):
        figure = _figure()
        path = tmp_path / "figure.json"
        save_figure(figure, path)
        assert load_figure(path) == figure

    def test_metadata_roundtrip(self, tmp_path):
        figure = _figure()
        meta = {"workers_requested": 8, "workers_effective": 2}
        with_meta = FigureResult(
            figure_id=figure.figure_id,
            title=figure.title,
            x_label=figure.x_label,
            y_label=figure.y_label,
            series=figure.series,
            metadata=meta,
        )
        path = tmp_path / "figure.json"
        save_figure(with_meta, path)
        loaded = load_figure(path)
        assert loaded.metadata == meta
        assert json.loads(path.read_text())["metadata"] == meta
        # Metadata describes the run, not the science: it never breaks the
        # byte-identity equality contract between runs.
        assert loaded == figure

    def test_empty_metadata_omitted_from_json(self, tmp_path):
        path = tmp_path / "figure.json"
        save_figure(_figure(), path)
        assert "metadata" not in json.loads(path.read_text())

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "figure.json"
        save_figure(_figure(), path)
        payload = json.loads(path.read_text())
        assert payload["figure_id"] == "Fig. P"
        assert payload["series"][0]["points"] == [[1.0, 0.5], [2.0, 0.75]]


class TestValidation:
    def test_wrong_schema_version(self):
        payload = figure_to_dict(_figure())
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            figure_from_dict(payload)

    def test_missing_field(self):
        payload = figure_to_dict(_figure())
        del payload["title"]
        with pytest.raises(ValueError, match="missing field"):
            figure_from_dict(payload)

    def test_malformed_points(self):
        payload = figure_to_dict(_figure())
        payload["series"][0]["points"] = [[1.0]]
        with pytest.raises(ValueError):
            figure_from_dict(payload)


class TestAtomicSave:
    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "figure.json"
        save_figure(_figure(), path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_overwrite_is_complete(self, tmp_path):
        path = tmp_path / "figure.json"
        path.write_text("x" * 10_000)  # longer than the real payload
        save_figure(_figure(), path)
        assert load_figure(path) == _figure()  # no trailing garbage

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        path = tmp_path / "figure.json"
        save_figure(_figure(), path)
        original = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.experiments.persistence.os.replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            save_figure(_figure(), path)
        assert path.read_text() == original
        assert [p.name for p in tmp_path.iterdir()] == [path.name]


class TestCheckpointStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.json")
        store.put("a=0.5", [1.0, 0.25])
        assert "a=0.5" in store
        assert store.get("a=0.5") == [1.0, 0.25]
        assert len(store) == 1

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "ckpt.json"
        CheckpointStore(path).put("k", {"delivered": 42})
        again = CheckpointStore(path)
        assert again.get("k") == {"delivered": 42}

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"schema_version": 99, "values": {}}))
        with pytest.raises(ValueError, match="schema version"):
            CheckpointStore(path)

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            CheckpointStore(tmp_path / "ckpt.json").get("nope")

    def test_accepts_v1_file_without_checksum(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"schema_version": 1, "values": {"k": 7}}))
        store = CheckpointStore(path)
        assert store.get("k") == 7
        assert store.quarantined is None


class TestCheckpointCorruption:
    def _corrupt_variants(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text('{"schema_version": 2, "values": }nope')
        not_object = tmp_path / "list.json"
        not_object.write_text("[1, 2, 3]")
        no_values = tmp_path / "novalues.json"
        no_values.write_text(json.dumps({"schema_version": 2, "checksum": "x"}))
        return [garbage, not_object, no_values]

    def test_garbage_is_quarantined_and_store_starts_empty(self, tmp_path):
        for path in self._corrupt_variants(tmp_path):
            original = path.read_bytes()
            store = CheckpointStore(path)
            assert len(store) == 0
            assert not path.exists()  # moved aside, not silently overwritten
            assert store.quarantined is not None
            assert store.quarantined.name.startswith(path.name + ".corrupt")
            assert store.quarantined.read_bytes() == original  # evidence kept

    def test_checksum_tamper_detected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        CheckpointStore(path).put("k", [1.0, 2.0])
        payload = json.loads(path.read_text())
        payload["values"]["k"] = [1.0, 2.5]  # silent bit-rot, valid JSON
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            CheckpointStore(path, on_corrupt="raise")

    def test_on_corrupt_raise_leaves_file_in_place(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("not json at all")
        with pytest.raises(CheckpointCorrupt, match="not valid JSON"):
            CheckpointStore(path, on_corrupt="raise")
        assert path.exists()

    def test_invalid_on_corrupt_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_corrupt"):
            CheckpointStore(tmp_path / "ckpt.json", on_corrupt="ignore")

    def test_quarantine_records_report_event(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("garbage")
        report = ExecutionReport()
        CheckpointStore(path, report=report)
        assert report.counts() == {CHECKPOINT_CORRUPT: 1}
        event = report.events[0]
        assert event.resolution == "quarantined"
        assert path.name in event.where

    def test_quarantine_names_do_not_collide(self, tmp_path):
        path = tmp_path / "ckpt.json"
        quarantined = []
        for _ in range(3):
            path.write_text("garbage")
            quarantined.append(CheckpointStore(path).quarantined)
        assert len(set(quarantined)) == 3
        assert all(p.exists() for p in quarantined)

    def test_foreign_schema_never_quarantined(self, tmp_path):
        # A valid file from a newer code version must raise (plain
        # ValueError, not CheckpointCorrupt) and stay on disk untouched.
        path = tmp_path / "ckpt.json"
        content = json.dumps({"schema_version": 99, "values": {"k": 1}})
        path.write_text(content)
        with pytest.raises(ValueError, match="schema version") as excinfo:
            CheckpointStore(path)
        assert not isinstance(excinfo.value, CheckpointCorrupt)
        assert path.read_text() == content

    def test_corrupt_resume_recomputes_byte_identical(self, tmp_path):
        """Acceptance: a damaged resume degrades to a clean full run."""
        keys = ["a", "b", "c"]
        compute_log = []

        def compute(key):
            compute_log.append(key)
            return {"value": ord(key) * 0.25}

        clean = tmp_path / "clean.json"
        expected = run_checkpointed(keys, compute, clean)

        damaged = tmp_path / "damaged.json"
        run_checkpointed(keys[:2], compute, damaged)  # partial sweep...
        damaged.write_text('{"schema_version": 2, "values": }boom')  # ...rotted

        report = ExecutionReport()
        compute_log.clear()
        values = run_checkpointed(keys, compute, damaged, report=report)
        assert compute_log == keys  # the lost work was recomputed in full
        assert values == expected
        assert damaged.read_bytes() == clean.read_bytes()
        assert report.counts() == {CHECKPOINT_CORRUPT: 1}


class TestRunCheckpointed:
    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        """Acceptance: resume after a crash reproduces the uninterrupted file."""
        keys = ["a", "b", "c", "d"]

        def compute(key):
            return {"value": ord(key) * 0.25}

        # Reference: one uninterrupted run.
        clean = tmp_path / "clean.json"
        expected = run_checkpointed(keys, compute, clean)

        # Crash after two units of work...
        crashed = tmp_path / "crashed.json"
        calls = []

        def flaky(key):
            if len(calls) == 2:
                raise KeyboardInterrupt
            calls.append(key)
            return compute(key)

        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(keys, flaky, crashed)
        assert len(CheckpointStore(crashed)) == 2

        # ...then resume: only the remaining keys are computed, and the
        # final checkpoint is byte-identical to the uninterrupted one.
        resumed_calls = []

        def resumed(key):
            resumed_calls.append(key)
            return compute(key)

        values = run_checkpointed(keys, resumed, crashed)
        assert resumed_calls == ["c", "d"]
        assert values == expected
        assert crashed.read_bytes() == clean.read_bytes()

    def test_values_in_key_order(self, tmp_path):
        values = run_checkpointed(
            ["x", "y"], lambda k: k.upper(), tmp_path / "c.json"
        )
        assert values == ["X", "Y"]

"""Tests for Algorithm 2 (ticket-based multi-copy forwarding)."""

import pytest

from repro.core.multi_copy import MultiCopySession, SprayPolicy
from repro.core.route import OnionRoute
from repro.sim.message import Message

from tests.helpers import feed

ROUTE = OnionRoute(
    source=0,
    destination=19,
    group_ids=(1, 2),
    groups=((5, 6, 7), (10, 11, 12)),
)


def _message(deadline=100.0):
    return Message(source=0, destination=19, created_at=0.0, deadline=deadline)


def _session(copies=3, policy=SprayPolicy.SOURCE):
    return MultiCopySession(_message(), ROUTE, copies=copies, spray_policy=policy)


class TestSourceSpray:
    def test_source_sprays_one_ticket_per_contact(self):
        session = _session(copies=3)
        feed(session, [(1.0, 0, 5)])
        assert session.live_copies == 2  # source (2 tickets) + sprayed copy
        feed(session, [(2.0, 0, 6)])
        assert session.live_copies == 3
        feed(session, [(3.0, 0, 7)])
        # source exhausted its tickets and deleted the message
        assert session.live_copies == 3

    def test_source_never_gives_two_copies_to_same_node(self):
        session = _session(copies=3)
        feed(session, [(1.0, 0, 5), (2.0, 0, 5)])
        assert session.live_copies == 2  # second contact rejected by Forward()

    def test_source_stops_after_l_copies(self):
        session = _session(copies=2)
        feed(session, [(1.0, 0, 5), (2.0, 0, 6), (3.0, 0, 7)])
        # L=2 copies sprayed; the third contact finds no tickets left
        assert session.outcome().transmissions == 2

    def test_single_copy_case_matches_algorithm_one(self):
        session = _session(copies=1)
        feed(session, [(1.0, 0, 5), (2.0, 5, 10), (3.0, 10, 19)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.transmissions == 3
        assert outcome.delivered_path == [0, 5, 10]


class TestRelaying:
    def test_sprayed_copies_relay_independently(self):
        session = _session(copies=2)
        feed(
            session,
            [
                (1.0, 0, 5),
                (2.0, 0, 6),
                (3.0, 5, 10),
                (4.0, 6, 11),
                (5.0, 10, 19),
            ],
        )
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.delivery_time == 5.0
        assert outcome.delivered_path == [0, 5, 10]

    def test_relay_deletes_after_forwarding(self):
        session = _session(copies=1)
        feed(session, [(1.0, 0, 5), (2.0, 5, 10)])
        # node 5 deleted its copy; contact 5-11 does nothing
        feed(session, [(3.0, 5, 11)])
        assert session.outcome().transmissions == 2

    def test_forward_blocked_when_peer_holds_copy(self):
        session = _session(copies=2)
        feed(session, [(1.0, 0, 5), (2.0, 0, 6), (3.0, 5, 10), (4.0, 6, 10)])
        # node 10 already holds a copy; 6 keeps its copy
        assert session.outcome().transmissions == 3

    def test_all_copies_can_deliver_and_count_cost(self):
        session = _session(copies=2)
        feed(
            session,
            [
                (1.0, 0, 5),
                (2.0, 0, 6),
                (3.0, 5, 10),
                (4.0, 6, 11),
                (5.0, 10, 19),
                (6.0, 11, 19),
            ],
        )
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.delivery_time == 5.0  # first arrival wins
        assert outcome.transmissions == 6  # both copies fully delivered
        assert session.done

    def test_cost_within_paper_bound(self):
        from repro.analysis.cost import multi_copy_cost_bound

        session = _session(copies=3)
        feed(
            session,
            [
                (1.0, 0, 5),
                (2.0, 0, 6),
                (3.0, 0, 7),
                (4.0, 5, 10),
                (5.0, 6, 11),
                (6.0, 7, 12),
                (7.0, 10, 19),
                (8.0, 11, 19),
                (9.0, 12, 19),
            ],
        )
        bound = multi_copy_cost_bound(ROUTE.onion_routers, 3)
        assert session.outcome().transmissions <= bound


class TestBinarySpray:
    def test_binary_policy_hands_half(self):
        session = _session(copies=4, policy=SprayPolicy.BINARY)
        feed(session, [(1.0, 0, 5)])
        # peer took floor(4/2)=2 tickets; it can spray once more downstream
        feed(session, [(2.0, 5, 10)])
        feed(session, [(3.0, 5, 11)])
        # node 5 held 2 tickets: sprayed one to 10, relayed last to 11
        assert session.outcome().transmissions == 3


class TestDeadline:
    def test_expiry_kills_all_copies(self):
        session = _session(copies=3)
        feed(session, [(1.0, 0, 5), (2.0, 0, 6)])
        feed(session, [(200.0, 5, 10)])
        outcome = session.outcome()
        assert session.done
        assert not outcome.delivered
        assert outcome.expired_copies == 3  # source + two sprayed copies

    def test_no_shortcut_to_destination(self):
        session = _session(copies=3)
        feed(session, [(1.0, 0, 19)])
        assert not session.outcome().delivered


class TestValidation:
    def test_endpoint_mismatch(self):
        bad = Message(source=1, destination=19, created_at=0, deadline=10)
        with pytest.raises(ValueError, match="do not match"):
            MultiCopySession(bad, ROUTE, copies=2)

    def test_zero_copies_rejected(self):
        with pytest.raises(ValueError):
            MultiCopySession(_message(), ROUTE, copies=0)

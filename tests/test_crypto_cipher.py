"""Tests for the authenticated stream cipher."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import (
    KEY_SIZE,
    AuthenticationError,
    SealedBox,
    open_box,
    seal,
)

KEY = bytes(range(32))
OTHER_KEY = bytes(range(1, 33))


class TestSealOpen:
    def test_roundtrip(self):
        blob = seal(KEY, b"attack at dawn")
        assert open_box(KEY, blob) == b"attack at dawn"

    def test_empty_plaintext(self):
        assert open_box(KEY, seal(KEY, b"")) == b""

    def test_large_plaintext(self):
        payload = os.urandom(100_000)
        assert open_box(KEY, seal(KEY, payload)) == payload

    def test_ciphertext_differs_from_plaintext(self):
        blob = seal(KEY, b"secret message")
        assert b"secret message" not in blob

    def test_random_nonce_gives_distinct_blobs(self):
        assert seal(KEY, b"x") != seal(KEY, b"x")

    def test_deterministic_with_fixed_nonce(self):
        nonce = b"\x01" * 16
        assert seal(KEY, b"x", nonce) == seal(KEY, b"x", nonce)

    def test_wrong_key_rejected_before_decryption(self):
        blob = seal(KEY, b"classified")
        with pytest.raises(AuthenticationError):
            open_box(OTHER_KEY, blob)

    def test_tampered_ciphertext_rejected(self):
        blob = bytearray(seal(KEY, b"classified"))
        blob[24] ^= 0x01
        with pytest.raises(AuthenticationError):
            open_box(KEY, bytes(blob))

    def test_tampered_tag_rejected(self):
        blob = bytearray(seal(KEY, b"classified"))
        blob[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            open_box(KEY, bytes(blob))

    def test_truncated_blob_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            open_box(KEY, b"short")

    def test_bad_key_length(self):
        with pytest.raises(ValueError, match="32 bytes"):
            seal(b"tiny", b"data")

    def test_bad_key_type(self):
        with pytest.raises(TypeError, match="bytes"):
            seal("not-bytes", b"data")

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError, match="nonce"):
            seal(KEY, b"data", nonce=b"short")


class TestSealedBox:
    def test_parse_and_encode_roundtrip(self):
        blob = seal(KEY, b"payload")
        assert SealedBox.parse(blob).encode() == blob

    def test_field_sizes(self):
        box = SealedBox.parse(seal(KEY, b"abc"))
        assert len(box.nonce) == 16
        assert len(box.tag) == 32
        assert len(box.ciphertext) == 3


class TestProperties:
    @given(payload=st.binary(max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_any_payload(self, payload):
        assert open_box(KEY, seal(KEY, payload)) == payload

    @given(payload=st.binary(min_size=1, max_size=256), flip=st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_any_single_bitflip_detected(self, payload, flip):
        blob = bytearray(seal(KEY, payload, nonce=b"\x02" * 16))
        position = flip % (len(blob) * 8)
        blob[position // 8] ^= 1 << (position % 8)
        # Flips in the length field may make the box unparseable (ValueError);
        # everything parseable must fail authentication. Either way, no
        # plaintext ever comes back.
        with pytest.raises((AuthenticationError, ValueError)):
            open_box(KEY, bytes(blob))

    @given(payload=st.binary(min_size=1, max_size=256))
    @settings(max_examples=60, deadline=None)
    def test_blob_length_is_plaintext_plus_overhead(self, payload):
        assert len(seal(KEY, payload)) == len(payload) + 52

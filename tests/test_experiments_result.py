"""Tests for figure results and rendering."""

import pytest

from repro.experiments.result import FigureResult, Series


def _series(label="Analysis: g=5", points=((1.0, 0.5), (2.0, 0.7))):
    return Series(label=label, points=points)


def _figure():
    return FigureResult(
        figure_id="Fig. X",
        title="Example",
        x_label="Deadline",
        y_label="Rate",
        series=(
            _series("Analysis", ((1.0, 0.5), (2.0, 0.7))),
            _series("Simulation", ((1.0, 0.4), (2.0, 0.65))),
        ),
    )


class TestSeries:
    def test_points_coerced_to_float_tuples(self):
        series = _series(points=[(1, 1), (2, 0)])
        assert series.points == ((1.0, 1.0), (2.0, 0.0))

    def test_xs_ys(self):
        series = _series()
        assert series.xs == (1.0, 2.0)
        assert series.ys == (0.5, 0.7)

    def test_y_at(self):
        assert _series().y_at(2.0) == 0.7

    def test_y_at_missing(self):
        with pytest.raises(KeyError):
            _series().y_at(9.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            Series(label="x", points=())


class TestFigureResult:
    def test_get_by_label(self):
        figure = _figure()
        assert figure.get("Analysis").y_at(1.0) == 0.5

    def test_get_missing_label(self):
        with pytest.raises(KeyError, match="no series"):
            _figure().get("nope")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FigureResult(
                figure_id="F",
                title="t",
                x_label="x",
                y_label="y",
                series=(_series("A"), _series("A")),
            )

    def test_no_series_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FigureResult(
                figure_id="F", title="t", x_label="x", y_label="y", series=()
            )

    def test_table_contains_all_values(self):
        table = _figure().to_table()
        assert "Fig. X" in table
        assert "0.5000" in table
        assert "0.6500" in table
        assert "Analysis" in table

    def test_table_handles_mismatched_grids(self):
        figure = FigureResult(
            figure_id="F",
            title="t",
            x_label="x",
            y_label="y",
            series=(
                _series("A", ((1.0, 0.1),)),
                _series("B", ((2.0, 0.2),)),
            ),
        )
        table = figure.to_table()
        assert "-" in table  # missing cells rendered as dashes

    def test_markdown_structure(self):
        markdown = _figure().to_markdown()
        assert markdown.startswith("### Fig. X")
        assert "| Deadline | Analysis | Simulation |" in markdown
        assert "| 1 | 0.5000 | 0.4000 |" in markdown

"""Tests for the failure taxonomy, execution report, and retry policy."""

import pytest

from repro.utils.resilience import (
    CHECKPOINT_CORRUPT,
    CHUNK_ERROR,
    CHUNK_TIMEOUT,
    FAILURE_KINDS,
    KERNEL_FALLBACK,
    WORKER_CRASH,
    ExecutionReport,
    ResilienceEvent,
    RetryPolicy,
)


class TestResilienceEvent:
    def test_known_kinds(self):
        for kind in FAILURE_KINDS:
            event = ResilienceEvent(kind=kind, where="chunk 0")
            assert event.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            ResilienceEvent(kind="Gremlin", where="chunk 0")

    def test_to_dict_roundtrip(self):
        event = ResilienceEvent(
            kind=WORKER_CRASH, where="chunk 3", attempt=2,
            detail="sigkill", resolution="retried",
        )
        assert ResilienceEvent(**event.to_dict()) == event


class TestExecutionReport:
    def test_empty_report_is_falsy(self):
        report = ExecutionReport()
        assert not report
        assert len(report) == 0
        assert report.describe() == ""
        assert report.counts() == {}

    def test_record_and_counts(self):
        report = ExecutionReport()
        report.record(CHUNK_ERROR, "chunk 0", attempt=1, resolution="retried")
        report.record(CHUNK_ERROR, "chunk 0", attempt=2, resolution="retried")
        report.record(CHUNK_TIMEOUT, "chunk 1", attempt=1, resolution="retried")
        assert report.counts() == {CHUNK_ERROR: 2, CHUNK_TIMEOUT: 1}
        assert report.retries == 3
        assert bool(report)

    def test_extend_accepts_events_and_dict_rows(self):
        report = ExecutionReport()
        event = ResilienceEvent(kind=KERNEL_FALLBACK, where="kernel")
        report.extend([event, event.to_dict()])
        assert len(report) == 2
        assert all(e == event for e in report.events)

    def test_summary_is_json_safe(self):
        import json

        report = ExecutionReport()
        report.record(CHECKPOINT_CORRUPT, "ckpt.json", resolution="quarantined")
        report.pool_restarts = 2
        summary = json.loads(json.dumps(report.summary()))
        assert summary["counts"] == {CHECKPOINT_CORRUPT: 1}
        assert summary["pool_restarts"] == 2
        assert summary["degraded_to_serial"] is False
        assert summary["events"][0]["where"] == "ckpt.json"

    def test_describe_mentions_restarts_and_degradation(self):
        report = ExecutionReport()
        report.record(WORKER_CRASH, "chunk 0", resolution="retried")
        report.pool_restarts = 1
        report.degraded_to_serial = True
        line = report.describe()
        assert "WorkerCrash=1" in line
        assert "pool_restarts=1" in line
        assert "degraded_to_serial" in line


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff": -0.1},
            {"factor": 0.5},
            {"jitter": 1.5},
            {"timeout": 0.0},
            {"max_pool_restarts": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_deterministic_and_growing(self):
        policy = RetryPolicy(backoff=0.1, factor=2.0, jitter=0.5)
        first = policy.delay(1, key=7)
        assert first == policy.delay(1, key=7)  # reproducible
        assert policy.delay(2, key=7) > first  # exponential growth wins
        assert policy.delay(1, key=8) != first  # chunks de-synchronised

    def test_delay_bounds(self):
        policy = RetryPolicy(backoff=0.1, factor=2.0, jitter=0.5)
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            assert base <= policy.delay(attempt, key=3) <= base * 1.5

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff=0.2, factor=3.0, jitter=0.0)
        assert policy.delay(1) == 0.2
        assert policy.delay(2) == pytest.approx(0.6)

    def test_pause_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(backoff=0.25, jitter=0.0, sleep=slept.append)
        policy.pause(2, key=0)
        assert slept == [0.5]

    def test_pause_skips_zero_delay(self):
        slept = []
        policy = RetryPolicy(backoff=0.0, sleep=slept.append)
        policy.pause(1)
        assert slept == []

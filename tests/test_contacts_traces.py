"""Tests for trace records, parsing, and serialisation."""

import pytest

from repro.contacts.traces import ContactRecord, ContactTrace


class TestContactRecord:
    def test_duration(self):
        assert ContactRecord(a=0, b=1, start=5.0, end=8.0).duration == 3.0

    def test_pair_canonical(self):
        assert ContactRecord(a=4, b=1, start=0, end=1).pair() == (1, 4)

    def test_self_contact_rejected(self):
        with pytest.raises(ValueError, match="self-contact"):
            ContactRecord(a=2, b=2, start=0, end=1)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            ContactRecord(a=0, b=1, start=5, end=4)


class TestContactTrace:
    def _records(self):
        return [
            ContactRecord(a=10, b=20, start=100.0, end=110.0),
            ContactRecord(a=20, b=30, start=50.0, end=55.0),
            ContactRecord(a=10, b=30, start=200.0, end=210.0),
        ]

    def test_sorted_on_construction(self):
        trace = ContactTrace(self._records())
        starts = [r.start for r in trace.records]
        assert starts == sorted(starts)

    def test_nodes_and_n(self):
        trace = ContactTrace(self._records())
        assert trace.nodes == (10, 20, 30)
        assert trace.n == 3

    def test_span(self):
        trace = ContactTrace(self._records())
        assert trace.start == 50.0
        assert trace.end == 210.0
        assert trace.duration == 160.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ContactTrace([])

    def test_len_and_iter(self):
        trace = ContactTrace(self._records())
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_normalized_dense_ids_and_zero_origin(self):
        trace = ContactTrace(self._records()).normalized()
        assert trace.nodes == (0, 1, 2)
        assert trace.start == 0.0

    def test_normalized_preserves_structure(self):
        original = ContactTrace(self._records())
        normalized = original.normalized()
        assert len(normalized) == len(original)
        assert normalized.duration == original.duration

    def test_restricted_to(self):
        trace = ContactTrace(self._records()).restricted_to([10, 20])
        assert len(trace) == 1
        assert trace.records[0].pair() == (10, 20)

    def test_contact_counts(self):
        records = self._records() + [ContactRecord(a=20, b=10, start=300, end=301)]
        counts = ContactTrace(records).contact_counts()
        assert counts[(10, 20)] == 2
        assert counts[(20, 30)] == 1


class TestSerialisation:
    def test_loads_basic(self):
        text = "0 1 5 6\n1 2 10 12\n"
        trace = ContactTrace.loads(text)
        assert len(trace) == 2
        assert trace.records[0].pair() == (0, 1)

    def test_loads_skips_comments_and_blanks(self):
        text = "# header\n\n0 1 5 6  # trailing comment\n"
        assert len(ContactTrace.loads(text)) == 1

    def test_loads_bad_field_count(self):
        with pytest.raises(ValueError, match="expected 4 fields"):
            ContactTrace.loads("0 1 5\n")

    def test_loads_empty_rejected(self):
        with pytest.raises(ValueError, match="no contact rows"):
            ContactTrace.loads("# only a comment\n")

    def test_roundtrip_dumps_loads(self):
        trace = ContactTrace.from_rows([(0, 1, 5, 6), (1, 2, 10, 12)])
        again = ContactTrace.loads(trace.dumps())
        assert [r.pair() for r in again] == [r.pair() for r in trace]
        assert [r.start for r in again] == [r.start for r in trace]

    def test_file_roundtrip(self, tmp_path):
        trace = ContactTrace.from_rows([(0, 1, 5, 6), (1, 2, 10, 12)])
        path = tmp_path / "trace.txt"
        trace.dump(path)
        assert len(ContactTrace.load(path)) == 2


class TestOneReport:
    REPORT = """\
# ONE simulator connectivity report
10.0 CONN p1 p2 up
15.0 CONN p2 p3 up
20.0 CONN p1 p2 down
30.0 CONN p2 p3 down
40.0 CONN p1 p3 up
"""

    def test_parses_up_down_pairs(self):
        trace = ContactTrace.from_one_report(self.REPORT)
        pairs = {r.pair(): (r.start, r.end) for r in trace.records}
        assert pairs[(1, 2)] == (10.0, 20.0)
        assert pairs[(2, 3)] == (15.0, 30.0)

    def test_dangling_up_closed_at_report_end(self):
        trace = ContactTrace.from_one_report(self.REPORT)
        pairs = {r.pair(): (r.start, r.end) for r in trace.records}
        assert pairs[(1, 3)] == (40.0, 40.0)

    def test_numeric_node_ids(self):
        trace = ContactTrace.from_one_report("5 CONN 0 1 up\n9 CONN 0 1 down\n")
        assert trace.records[0].pair() == (0, 1)

    def test_unmatched_down_ignored(self):
        trace = ContactTrace.from_one_report(
            "1 CONN 0 1 down\n2 CONN 0 1 up\n3 CONN 0 1 down\n"
        )
        assert len(trace) == 1
        assert trace.records[0].start == 2.0

    def test_bad_state_rejected(self):
        with pytest.raises(ValueError, match="unknown connection state"):
            ContactTrace.from_one_report("1 CONN 0 1 sideways\n")

    def test_bad_row_rejected(self):
        with pytest.raises(ValueError, match="expected 'time CONN"):
            ContactTrace.from_one_report("1 LINK 0 1 up\n")

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError, match="no completed contacts"):
            ContactTrace.from_one_report("# nothing\n")

    def test_feeds_standard_pipeline(self):
        trace = ContactTrace.from_one_report(self.REPORT).normalized()
        assert trace.n == 3

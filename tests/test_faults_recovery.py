"""Tests for protocol recovery: custody re-anycast and ticket reclamation."""

import pytest

from repro.adversary.dropping import DroppingRelays
from repro.core.multi_copy import MultiCopySession
from repro.core.route import OnionRoute
from repro.core.single_copy import SingleCopySession
from repro.faults.failstop import FailStopSchedule
from repro.faults.recovery import FaultPlan, RecoveryPolicy
from repro.sim.message import Message

from tests.helpers import feed

ROUTE = OnionRoute(
    source=0,
    destination=19,
    group_ids=(1, 2),
    groups=((5, 6), (10, 11)),
)


def _message(deadline=1000.0):
    return Message(source=0, destination=19, created_at=0.0, deadline=deadline)


def _policy(timeout=10.0, retries=3):
    return RecoveryPolicy(custody_timeout=timeout, max_retries=retries)


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(custody_timeout=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(custody_timeout=10.0, max_retries=0)

    def test_fault_plan_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan(failstop=FailStopSchedule(4, deaths={})).empty
        assert not FaultPlan(relays=DroppingRelays({1}, 0.5, rng=0)).empty


class TestSingleCopyGreyhole:
    def test_blackhole_without_recovery_drops(self):
        plan = FaultPlan(relays=DroppingRelays.blackholes({5, 6}))
        session = SingleCopySession(_message(), ROUTE, faults=plan)
        feed(session, [(1.0, 0, 5)])
        outcome = session.outcome()
        assert session.done
        assert outcome.status == "dropped"
        assert outcome.lost_copies == 1
        assert outcome.transmissions == 1  # the doomed transfer still cost
        assert not outcome.delivered

    def test_custody_retry_reaches_other_member(self):
        plan = FaultPlan(relays=DroppingRelays.blackholes({5}))
        session = SingleCopySession(
            _message(), ROUTE, faults=plan, recovery=_policy(timeout=10.0)
        )
        # 5 eats the copy; before the custody timeout nothing happens
        feed(session, [(1.0, 0, 5), (5.0, 0, 6)])
        assert not session.outcome().delivered
        # after the timeout the source re-anycasts to the untried member 6
        feed(session, [(12.0, 0, 6), (13.0, 6, 10), (14.0, 10, 19)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.status == "delivered"
        assert outcome.lost_copies == 1
        assert outcome.delivered_path == [0, 6, 10]

    def test_retry_skips_already_tried_members(self):
        plan = FaultPlan(relays=DroppingRelays.blackholes({5, 6}))
        session = SingleCopySession(
            _message(), ROUTE, faults=plan, recovery=_policy(timeout=5.0)
        )
        feed(session, [(1.0, 0, 5)])   # eaten by 5
        feed(session, [(10.0, 0, 6)])  # retry: 6 also eats it
        feed(session, [(20.0, 0, 5), (21.0, 0, 6)])
        # both members tried and compromised: nothing left to try
        assert session.outcome().status == "dropped"

    def test_bounded_retries(self):
        # one group with three blackhole members, one retry allowed
        route = OnionRoute(
            source=0, destination=19, group_ids=(1,), groups=((5, 6, 7),)
        )
        plan = FaultPlan(relays=DroppingRelays.blackholes({5, 6, 7}))
        session = SingleCopySession(
            _message(), route, faults=plan, recovery=_policy(timeout=2.0, retries=1)
        )
        feed(session, [(1.0, 0, 5)])
        assert session.retries_left == 1
        feed(session, [(5.0, 0, 6)])  # retry #1, eaten again
        assert session.retries_left == 0
        feed(session, [(10.0, 0, 7)])
        assert session.outcome().status == "dropped"


class TestSingleCopyFailStop:
    def test_carrier_death_without_recovery_drops(self):
        plan = FaultPlan(failstop=FailStopSchedule(20, deaths={5: 3.0}))
        session = SingleCopySession(_message(), ROUTE, faults=plan)
        feed(session, [(1.0, 0, 5)])  # 5 now carries the copy
        feed(session, [(4.0, 1, 2)])  # any event past the death detects it
        outcome = session.outcome()
        assert outcome.status == "dropped"
        assert outcome.lost_copies == 1

    def test_custodian_recovers_after_relay_death(self):
        plan = FaultPlan(failstop=FailStopSchedule(20, deaths={5: 3.0}))
        session = SingleCopySession(
            _message(), ROUTE, faults=plan, recovery=_policy(timeout=10.0)
        )
        feed(session, [(1.0, 0, 5)])  # transfer, custody at 0 until 11.0
        feed(session, [(4.0, 1, 2)])  # death detected, recovery armed
        feed(session, [(12.0, 0, 6), (13.0, 6, 10), (14.0, 10, 19)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.delivered_path == [0, 6, 10]

    def test_source_death_is_unrecoverable(self):
        plan = FaultPlan(failstop=FailStopSchedule(20, deaths={0: 0.5}))
        session = SingleCopySession(
            _message(), ROUTE, faults=plan, recovery=_policy()
        )
        feed(session, [(1.0, 0, 5)])  # source already dead: no custodian
        assert session.outcome().status == "dropped"

    def test_expiry_while_lost_reports_expired(self):
        plan = FaultPlan(failstop=FailStopSchedule(20, deaths={5: 3.0}))
        session = SingleCopySession(
            _message(deadline=20.0), ROUTE, faults=plan, recovery=_policy(timeout=50.0)
        )
        feed(session, [(1.0, 0, 5), (4.0, 1, 2)])
        feed(session, [(25.0, 0, 6)])  # deadline passed while waiting
        outcome = session.outcome()
        assert outcome.status == "expired"
        assert outcome.expired_copies == 0  # the copy itself was lost


class TestMultiCopyFaults:
    def test_greyhole_relay_kills_copy_without_recovery(self):
        plan = FaultPlan(relays=DroppingRelays.blackholes({10, 11}))
        session = MultiCopySession(_message(), ROUTE, copies=1, faults=plan)
        feed(session, [(1.0, 0, 5), (2.0, 5, 10)])
        outcome = session.outcome()
        assert session.done
        assert outcome.status == "dropped"
        assert outcome.lost_copies == 1

    def test_reclaimed_tickets_respray(self):
        plan = FaultPlan(relays=DroppingRelays.blackholes({5}))
        session = MultiCopySession(
            _message(), ROUTE, copies=2, faults=plan, recovery=_policy()
        )
        feed(session, [(1.0, 0, 5)])  # sprayed copy eaten, ticket reclaimed
        assert session.reclaims_left == 2
        assert session.live_copies == 1  # the seed again holds 2 tickets
        feed(session, [(2.0, 0, 6), (3.0, 6, 10), (4.0, 10, 19)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.lost_copies == 1

    def test_carrier_death_loses_held_copy(self):
        plan = FaultPlan(failstop=FailStopSchedule(20, deaths={5: 5.0}))
        session = MultiCopySession(_message(), ROUTE, copies=2, faults=plan)
        feed(session, [(1.0, 0, 5)])  # copy sprayed to 5
        feed(session, [(6.0, 1, 2)])  # 5 is dead now, copy lost
        assert session.outcome().lost_copies == 1
        # the seed still holds the remaining ticket and can deliver
        feed(session, [(7.0, 0, 6), (8.0, 6, 10), (9.0, 10, 19)])
        assert session.outcome().delivered

    def test_seed_revival_after_exhaustion(self):
        plan = FaultPlan(relays=DroppingRelays.blackholes({5, 6}))
        session = MultiCopySession(
            _message(), ROUTE, copies=1, faults=plan, recovery=_policy(retries=2)
        )
        feed(session, [(1.0, 0, 5)])  # single-ticket relay eaten: seed revived
        assert not session.done
        assert session.outcome().status == "pending"
        feed(session, [(2.0, 0, 6)])  # eaten again (retry #2)
        assert not session.done
        feed(session, [(3.0, 0, 5)])  # reclaims exhausted
        assert session.outcome().status == "dropped"

    def test_dead_seed_cannot_reclaim(self):
        plan = FaultPlan(
            failstop=FailStopSchedule(20, deaths={0: 1.5}),
            relays=DroppingRelays.blackholes({10, 11}),
        )
        session = MultiCopySession(
            _message(), ROUTE, copies=2, faults=plan, recovery=_policy()
        )
        feed(session, [(1.0, 0, 5)])  # one copy sprayed before the source dies
        # The dead source takes the seed (and its remaining ticket) down;
        # then relay 10 eats the surviving copy — nobody left to reclaim.
        feed(session, [(2.0, 5, 10)])
        outcome = session.outcome()
        assert outcome.status == "dropped"
        assert outcome.lost_copies == 2

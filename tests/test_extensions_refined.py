"""Tests for the refined analytical models."""

import numpy as np
import pytest

from repro.analysis.anonymity import path_anonymity_multicopy
from repro.analysis.delivery import onion_path_rates
from repro.analysis.hypoexponential import Hypoexponential
from repro.contacts.graph import ContactGraph
from repro.extensions.refined_models import (
    arden_hop_rates,
    expected_exposed_hops_refined,
    path_anonymity_multicopy_refined,
    refined_onion_path_rates,
)

GROUPS = [(5, 6, 7, 8, 9), (10, 11, 12, 13, 14)]


@pytest.fixture
def graph():
    return ContactGraph.complete(20, 0.01)


class TestRefinedPathRates:
    def test_last_hop_is_average_not_sum(self, graph):
        paper = onion_path_rates(graph, 0, GROUPS, 19)
        refined = refined_onion_path_rates(graph, 0, GROUPS, 19)
        assert refined[:-1] == paper[:-1]
        assert refined[-1] == pytest.approx(paper[-1] / 5)  # g = 5

    def test_refined_model_matches_simulation(self, graph):
        """The headline fix: the refined CDF matches the protocol."""
        from repro.contacts.events import ExponentialContactProcess
        from repro.core.route import OnionRoute
        from repro.core.single_copy import SingleCopySession
        from repro.sim.engine import SimulationEngine
        from repro.sim.message import Message

        route = OnionRoute(
            source=0, destination=19, group_ids=(0, 1), groups=tuple(GROUPS)
        )
        horizon = 200.0
        rng = np.random.default_rng(0)
        delivered = 0
        trials = 1000
        for _ in range(trials):
            engine = SimulationEngine(
                ExponentialContactProcess(graph, rng=rng), horizon=horizon
            )
            session = SingleCopySession(
                Message(0, 19, 0.0, horizon), route
            )
            engine.add_session(session)
            engine.run()
            delivered += session.outcome().delivered
        sim = delivered / trials
        refined = Hypoexponential(
            refined_onion_path_rates(graph, 0, GROUPS, 19)
        ).cdf(horizon)
        paper = Hypoexponential(onion_path_rates(graph, 0, GROUPS, 19)).cdf(
            horizon
        )
        assert sim == pytest.approx(refined, abs=0.05)
        assert paper > sim  # and the paper's model stays optimistic

    def test_destination_excluded_from_last_group(self, graph):
        rates = refined_onion_path_rates(graph, 0, [(1, 2), (3, 19)], 19)
        # only member 3 can carry toward the destination
        assert rates[-1] == pytest.approx(graph.rate(3, 19))

    def test_degenerate_last_group_rejected(self, graph):
        with pytest.raises(ValueError, match="no member besides"):
            refined_onion_path_rates(graph, 0, [(1, 2), (19,)], 19)


class TestArdenRates:
    def test_has_one_extra_hop(self, graph):
        base = refined_onion_path_rates(graph, 0, GROUPS, 19)
        arden = arden_hop_rates(graph, 0, GROUPS, (15, 16, 17, 19), 19)
        assert len(arden) == len(base) + 1

    def test_requires_destination_in_group(self, graph):
        with pytest.raises(ValueError, match="must contain"):
            arden_hop_rates(graph, 0, GROUPS, (15, 16), 19)

    def test_group_needs_other_members(self, graph):
        with pytest.raises(ValueError, match="other member"):
            arden_hop_rates(graph, 0, GROUPS, (19,), 19)

    def test_arden_slower_than_abstract(self, graph):
        """The destination-group detour costs delivery probability."""
        base = Hypoexponential(
            refined_onion_path_rates(graph, 0, GROUPS, 19)
        ).cdf(200.0)
        arden = Hypoexponential(
            arden_hop_rates(graph, 0, GROUPS, (15, 16, 17, 19), 19)
        ).cdf(200.0)
        assert arden < base


class TestRefinedExposure:
    def test_reduces_to_single_copy(self):
        assert expected_exposed_hops_refined(4, 0.2, 1) == pytest.approx(
            4 * 0.2
        )

    def test_source_hop_counted_once(self):
        eta, p, copies = 4, 0.2, 3
        value = expected_exposed_hops_refined(eta, p, copies)
        assert value == pytest.approx(p + 3 * (1 - (1 - p) ** 3))

    def test_below_paper_eq20(self):
        from repro.analysis.anonymity import expected_exposed_groups_multicopy

        for copies in (2, 3, 5):
            refined = expected_exposed_hops_refined(4, 0.2, copies)
            paper = expected_exposed_groups_multicopy(4, 0.2, copies)
            assert refined < paper

    def test_refined_anonymity_above_paper_model(self):
        for copies in (2, 3, 5):
            refined = path_anonymity_multicopy_refined(100, 4, 5, 0.2, copies)
            paper = path_anonymity_multicopy(
                100, 4, 5, 0.2, copies, form="exact"
            )
            assert refined > paper

    def test_forms(self):
        exact = path_anonymity_multicopy_refined(100, 4, 5, 0.2, 3, form="exact")
        closed = path_anonymity_multicopy_refined(
            100, 4, 5, 0.2, 3, form="closed-form"
        )
        assert exact == pytest.approx(closed, abs=0.06)
        with pytest.raises(ValueError, match="unknown form"):
            path_anonymity_multicopy_refined(100, 4, 5, 0.2, 3, form="x")

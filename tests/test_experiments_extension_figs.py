"""Smoke tests for the extension figures (E1/E2) at reduced scale."""

import pytest

from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.extension_figs import figure_e1, figure_e2

SMALL = DEFAULT_CONFIG.with_(deadlines=(120.0, 480.0, 1080.0))


class TestFigureE1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure_e1(config=SMALL, sessions=40, seed=1)

    def test_series(self, result):
        assert set(result.labels) == {
            "Paper model (Eq. 6)",
            "Refined model",
            "Simulation",
        }

    def test_ordering_paper_above_refined(self, result):
        paper = result.get("Paper model (Eq. 6)")
        refined = result.get("Refined model")
        for x in paper.xs:
            assert paper.y_at(x) >= refined.y_at(x) - 1e-9

    def test_all_curves_monotone(self, result):
        for series in result.series:
            assert list(series.ys) == sorted(series.ys)


class TestFigureE2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure_e2(config=SMALL, sessions=30, seed=2)

    def test_five_protocols(self, result):
        assert len(result.series) == 5

    def test_epidemic_dominates(self, result):
        final = {s.label: s.points[-1][1] for s in result.series}
        assert final["Epidemic"] == max(final.values())

    def test_multicopy_onion_at_least_single(self, result):
        final = {s.label: s.points[-1][1] for s in result.series}
        assert final["Onion L=3"] >= final["Onion L=1"] - 0.05

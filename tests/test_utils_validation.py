"""Tests for the validation helpers."""

import math

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, math.inf, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be"):
            check_positive(bad, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="deadline"):
            check_positive(-3, "deadline")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    @pytest.mark.parametrize("bad", [-0.1, math.nan, -math.inf])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_non_negative(bad, "x")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "k") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "k")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "k")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(3.0, "k")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.nan])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")


class TestCheckFraction:
    def test_accepts_zero(self):
        assert check_fraction(0.0, "c") == 0.0

    def test_accepts_just_below_one(self):
        assert check_fraction(0.999, "c") == 0.999

    def test_rejects_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.0, "c")

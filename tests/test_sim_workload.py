"""Tests for the Poisson multi-message workload runner."""

import numpy as np
import pytest

from repro.contacts.graph import ContactGraph
from repro.core.onion_groups import OnionGroupDirectory
from repro.routing.epidemic import EpidemicSession
from repro.sim.workload import (
    PoissonWorkload,
    onion_session_factory,
)
from repro.utils.rng import ensure_rng


@pytest.fixture
def graph():
    return ContactGraph.complete(30, 0.05)


class TestMessageGeneration:
    def test_arrival_count_matches_rate(self):
        workload = PoissonWorkload(
            arrival_rate=0.5, message_deadline=10.0, duration=2000.0
        )
        messages = workload.generate_messages(30, ensure_rng(0))
        assert len(messages) == pytest.approx(1000, rel=0.15)

    def test_arrivals_ordered_and_within_window(self):
        workload = PoissonWorkload(
            arrival_rate=0.2, message_deadline=10.0, duration=500.0
        )
        messages = workload.generate_messages(30, ensure_rng(1))
        times = [m.created_at for m in messages]
        assert times == sorted(times)
        assert max(times) <= 500.0

    def test_endpoints_distinct(self):
        workload = PoissonWorkload(
            arrival_rate=0.2, message_deadline=10.0, duration=500.0
        )
        for message in workload.generate_messages(30, ensure_rng(2)):
            assert message.source != message.destination

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PoissonWorkload(arrival_rate=0.0, message_deadline=10.0, duration=1.0)
        with pytest.raises(ValueError):
            PoissonWorkload(arrival_rate=1.0, message_deadline=0.0, duration=1.0)


class TestRun:
    def test_epidemic_workload_delivers_everything(self, graph):
        workload = PoissonWorkload(
            arrival_rate=0.05, message_deadline=300.0, duration=400.0
        )
        result = workload.run(
            graph, lambda message: EpidemicSession(message), rng=3
        )
        assert result.messages > 5
        assert result.stats.delivery_rate > 0.95

    def test_onion_workload(self, graph):
        directory = OnionGroupDirectory(30, 5, rng=4)
        factory = onion_session_factory(directory, onion_routers=2, rng=4)
        workload = PoissonWorkload(
            arrival_rate=0.05, message_deadline=400.0, duration=400.0
        )
        result = workload.run(graph, factory, rng=4)
        assert 0.3 < result.stats.delivery_rate <= 1.0
        # single-copy onion costs exactly eta transmissions when delivered
        delivered = [o for o in result.outcomes if o.delivered]
        assert all(o.transmissions == 3 for o in delivered)

    def test_multicopy_factory(self, graph):
        directory = OnionGroupDirectory(30, 5, rng=5)
        factory = onion_session_factory(
            directory, onion_routers=2, copies=3, rng=5
        )
        workload = PoissonWorkload(
            arrival_rate=0.03, message_deadline=400.0, duration=300.0
        )
        result = workload.run(graph, factory, rng=5)
        assert result.stats.mean_transmissions > 3

    def test_empty_workload_raises(self, graph):
        workload = PoissonWorkload(
            arrival_rate=1e-9, message_deadline=10.0, duration=1.0
        )
        with pytest.raises(RuntimeError, match="no messages"):
            workload.run(graph, lambda m: EpidemicSession(m), rng=6)

    def test_deadlines_enforced_per_message(self, graph):
        workload = PoissonWorkload(
            arrival_rate=0.05, message_deadline=50.0, duration=200.0
        )
        result = workload.run(graph, lambda m: EpidemicSession(m), rng=7)
        for outcome in result.outcomes:
            if outcome.delivered:
                assert outcome.delay <= 50.0

"""Tests for node churn and its availability-scaling analytical twin."""

import numpy as np
import pytest

from repro.contacts.events import ExponentialContactProcess
from repro.contacts.graph import ContactGraph
from repro.core.route import OnionRoute
from repro.core.single_copy import SingleCopySession
from repro.faults.churn import (
    FaultFilteredContactProcess,
    NodeChurnProcess,
    NodeChurnSchedule,
    churned_graph,
)
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message
from repro.utils.rng import ensure_rng, spawn_rng


@pytest.fixture
def graph():
    return ContactGraph.complete(10, 0.05)


class TestSchedule:
    def test_availability_formula(self):
        schedule = NodeChurnSchedule(5, fail_rate=1.0, repair_rate=3.0, rng=0)
        assert schedule.availability == pytest.approx(0.75)
        assert schedule.mean_cycle == pytest.approx(1.0 + 1.0 / 3.0)

    def test_never_failing_nodes(self):
        schedule = NodeChurnSchedule(5, fail_rate=0.0, repair_rate=1.0, rng=0)
        assert schedule.availability == 1.0
        for node in range(5):
            assert schedule.is_up(node, 1e6)

    def test_from_availability_round_trip(self):
        schedule = NodeChurnSchedule.from_availability(
            4, availability=0.6, mean_cycle=10.0, rng=1
        )
        assert schedule.availability == pytest.approx(0.6)
        assert schedule.mean_cycle == pytest.approx(10.0)

    def test_from_availability_rejects_bounds(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                NodeChurnSchedule.from_availability(4, bad, 10.0, rng=0)

    def test_stationary_up_fraction(self):
        schedule = NodeChurnSchedule.from_availability(
            2000, availability=0.7, mean_cycle=10.0, rng=2
        )
        up = sum(schedule.is_up(node, 0.0) for node in range(2000))
        assert up / 2000 == pytest.approx(0.7, abs=0.04)

    def test_time_averaged_up_fraction(self):
        schedule = NodeChurnSchedule.from_availability(
            1, availability=0.4, mean_cycle=5.0, rng=3
        )
        samples = [schedule.is_up(0, t) for t in np.linspace(0.0, 5000.0, 20000)]
        assert np.mean(samples) == pytest.approx(0.4, abs=0.05)

    def test_monotonicity_guard(self):
        schedule = NodeChurnSchedule.from_availability(3, 0.5, 10.0, rng=4)
        schedule.is_up(1, 50.0)
        with pytest.raises(ValueError, match="monotone"):
            schedule.is_up(1, 49.0)
        # other nodes keep their own clocks
        assert schedule.is_up(2, 1.0) in (True, False)

    def test_node_bounds(self):
        schedule = NodeChurnSchedule.from_availability(3, 0.5, 10.0, rng=5)
        with pytest.raises(ValueError):
            schedule.is_up(3, 0.0)
        with pytest.raises(ValueError):
            schedule.is_up(-1, 0.0)

    def test_independent_of_query_order(self):
        """Spawned per-node streams: node 0's timeline ignores node 1."""
        a = NodeChurnSchedule.from_availability(2, 0.5, 10.0, rng=6)
        b = NodeChurnSchedule.from_availability(2, 0.5, 10.0, rng=6)
        times = np.linspace(0.0, 200.0, 50)
        only_zero = [a.is_up(0, t) for t in times]
        interleaved = []
        for t in times:
            b.is_up(1, t)
            interleaved.append(b.is_up(0, t))
        assert only_zero == interleaved


class TestChurnProcess:
    def test_keeps_a_squared_fraction(self, graph):
        availability = 0.7
        base = ExponentialContactProcess(graph, rng=10)
        total = sum(1 for _ in base.events_until(3000.0))
        schedule = NodeChurnSchedule.from_availability(
            graph.n, availability, mean_cycle=5.0, rng=11
        )
        churned = NodeChurnProcess(
            ExponentialContactProcess(graph, rng=10), schedule
        )
        kept = sum(1 for _ in churned.events_until(3000.0))
        assert kept / total == pytest.approx(availability**2, abs=0.05)

    def test_events_stay_chronological(self, graph):
        schedule = NodeChurnSchedule.from_availability(graph.n, 0.5, 5.0, rng=12)
        churned = NodeChurnProcess(
            ExponentialContactProcess(graph, rng=13), schedule
        )
        times = [event.time for event in churned.events_until(500.0)]
        assert times == sorted(times)

    def test_requires_churn_schedule(self, graph):
        with pytest.raises(TypeError):
            NodeChurnProcess(ExponentialContactProcess(graph, rng=0), object())

    def test_generic_filter_accepts_any_schedule(self, graph):
        class AlwaysDown:
            def is_up(self, node, time):
                return False

        filtered = FaultFilteredContactProcess(
            ExponentialContactProcess(graph, rng=0), AlwaysDown()
        )
        assert list(filtered.events_until(200.0)) == []


class TestChurnedGraph:
    def test_scalar_scaling(self, graph):
        scaled = churned_graph(graph, 0.5)
        assert scaled.rate(0, 1) == pytest.approx(0.05 * 0.25)

    def test_per_node_scaling(self, graph):
        a = np.full(graph.n, 1.0)
        a[0] = 0.5
        scaled = churned_graph(graph, a)
        assert scaled.rate(0, 1) == pytest.approx(0.05 * 0.5)
        assert scaled.rate(1, 2) == pytest.approx(0.05)

    def test_full_availability_is_identity(self, graph):
        scaled = churned_graph(graph, 1.0)
        assert np.allclose(scaled.rates, graph.rates)

    def test_rejects_bad_shapes_and_values(self, graph):
        with pytest.raises(ValueError):
            churned_graph(graph, [0.5, 0.5])
        with pytest.raises(ValueError):
            churned_graph(graph, 1.5)
        with pytest.raises(ValueError):
            churned_graph(graph, -0.1)


class TestAvailabilityScalingEquivalence:
    """The acceptance property: churn sim matches Eq. 6 on churned_graph.

    On a homogeneous complete graph with a singleton final onion group the
    Eq. 4–6 hypoexponential is exact for single-copy forwarding (a larger
    final group triggers the documented last-hop anycast optimism, which
    is a property of Eq. 4, not of churn), so the only gap left is Monte
    Carlo noise plus the fast-churn approximation.
    """

    @pytest.mark.parametrize("availability", [0.5, 0.8])
    def test_delivery_matches_model(self, availability):
        from repro.analysis.robustness import churned_delivery_rate

        n, rate, deadline, trials = 12, 0.05, 150.0, 400
        graph = ContactGraph.complete(n, rate)
        route = OnionRoute(
            source=0, destination=11, group_ids=(1, 2), groups=((1, 2, 3), (4,))
        )
        rng = ensure_rng(42)
        delivered = 0
        for child in spawn_rng(rng, trials):
            schedule = NodeChurnSchedule.from_availability(
                n, availability, mean_cycle=2.0, rng=child
            )
            events = NodeChurnProcess(
                ExponentialContactProcess(graph, rng=child), schedule
            )
            engine = SimulationEngine(events, horizon=deadline)
            session = SingleCopySession(
                Message(0, 11, 0.0, deadline), route
            )
            engine.add_session(session)
            engine.run()
            delivered += session.outcome().delivered
        model = churned_delivery_rate(
            graph, 0, route.groups, 11, deadline, availability
        )
        assert delivered / trials == pytest.approx(model, abs=0.07)

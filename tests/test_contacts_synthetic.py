"""Tests for the synthetic Cambridge / Infocom 2005 trace generators."""

import numpy as np
import pytest

from repro.contacts.synthetic import (
    _SECONDS_PER_DAY,
    cambridge_like_trace,
    infocom05_like_trace,
)


def _hour_of_day(t: float) -> float:
    return (t % _SECONDS_PER_DAY) / 3600.0


class TestCambridgeLikeTrace:
    def test_node_count(self):
        trace = cambridge_like_trace(rng=0)
        assert trace.n == 12

    def test_contacts_confined_to_business_hours(self):
        trace = cambridge_like_trace(rng=1, business_hours=(9.0, 17.0))
        for record in trace.records:
            assert 9.0 <= _hour_of_day(record.start) <= 17.0

    def test_dense_pair_coverage(self):
        """Cambridge is dense: nearly every pair meets at least once."""
        trace = cambridge_like_trace(rng=2)
        pairs = set(trace.contact_counts())
        assert len(pairs) >= 0.9 * (12 * 11 / 2)

    def test_spans_requested_days(self):
        trace = cambridge_like_trace(days=3, rng=3)
        assert trace.end <= 3 * _SECONDS_PER_DAY
        assert trace.end > 2 * _SECONDS_PER_DAY

    def test_seed_reproducible(self):
        a = cambridge_like_trace(rng=4)
        b = cambridge_like_trace(rng=4)
        assert len(a) == len(b)
        assert a.records[0] == b.records[0]

    def test_frequent_contacts(self):
        """Mean per-pair contact count is high enough for 3-hop onions."""
        trace = cambridge_like_trace(rng=5)
        counts = list(trace.contact_counts().values())
        assert np.mean(counts) > 20


class TestInfocomLikeTrace:
    def test_node_count(self):
        trace = infocom05_like_trace(rng=0)
        assert trace.n == 41

    def test_sparser_than_cambridge(self):
        infocom = infocom05_like_trace(rng=1)
        pairs_met = len(infocom.contact_counts())
        possible = 41 * 40 / 2
        assert pairs_met < 0.95 * possible  # some pairs never meet

    def test_off_hours_are_silent(self):
        trace = infocom05_like_trace(rng=2, business_hours=(9.0, 18.0))
        for record in trace.records:
            assert 9.0 <= _hour_of_day(record.start) <= 18.0

    def test_overnight_gap_exists(self):
        """There must be a contact gap of several hours (the Fig. 17 plateau)."""
        trace = infocom05_like_trace(rng=3)
        starts = sorted(r.start for r in trace.records)
        max_gap = max(b - a for a, b in zip(starts, starts[1:]))
        assert max_gap > 10 * 3600

    def test_density_parameter_respected(self):
        dense = infocom05_like_trace(density=1.0, rng=4)
        sparse = infocom05_like_trace(density=0.4, rng=4)
        assert len(sparse.contact_counts()) < len(dense.contact_counts())

    def test_invalid_density(self):
        with pytest.raises(ValueError, match="density"):
            infocom05_like_trace(density=0.0)

"""Tests for the random-waypoint mobility substrate."""

import numpy as np
import pytest

from repro.contacts.intercontact import estimate_rates_from_trace
from repro.contacts.mobility import (
    RandomWaypointConfig,
    RandomWaypointMobility,
    random_waypoint_trace,
)

DENSE = RandomWaypointConfig(
    width=100.0, height=100.0, radio_range=15.0, time_step=1.0,
    min_speed=1.0, max_speed=3.0, pause_time=5.0,
)


class TestConfig:
    def test_defaults_valid(self):
        RandomWaypointConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"width": 0.0},
            {"min_speed": 0.0},
            {"max_speed": 0.1, "min_speed": 0.5},
            {"pause_time": -1.0},
            {"radio_range": 0.0},
            {"time_step": 0.0},
        ],
    )
    def test_invalid_rejected(self, overrides):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(RandomWaypointConfig(), **overrides)


class TestMotion:
    def test_positions_within_area(self):
        mobility = RandomWaypointMobility(10, DENSE, rng=0)
        for _ in range(200):
            mobility.step()
        positions = mobility.positions
        assert (positions >= 0).all()
        assert (positions[:, 0] <= DENSE.width).all()
        assert (positions[:, 1] <= DENSE.height).all()

    def test_nodes_actually_move(self):
        mobility = RandomWaypointMobility(5, DENSE, rng=1)
        before = mobility.positions
        for _ in range(50):
            mobility.step()
        after = mobility.positions
        assert np.linalg.norm(after - before, axis=1).max() > 1.0

    def test_speed_bounded(self):
        mobility = RandomWaypointMobility(5, DENSE, rng=2)
        previous = mobility.positions
        for _ in range(100):
            mobility.step()
            current = mobility.positions
            step_distance = np.linalg.norm(current - previous, axis=1)
            assert (step_distance <= DENSE.max_speed * DENSE.time_step + 1e-9).all()
            previous = current

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError, match="two nodes"):
            RandomWaypointMobility(1, DENSE)

    def test_in_contact_symmetric_pairs(self):
        mobility = RandomWaypointMobility(8, DENSE, rng=3)
        for i, j in mobility.in_contact():
            assert i < j


class TestTraceGeneration:
    def test_trace_shape(self):
        trace = random_waypoint_trace(12, duration=2000.0, config=DENSE, rng=4)
        assert trace.n <= 12
        assert len(trace) > 0
        assert trace.end <= 2000.0 + DENSE.time_step

    def test_records_have_positive_duration_windows(self):
        trace = random_waypoint_trace(12, duration=1500.0, config=DENSE, rng=5)
        for record in trace.records:
            assert record.end >= record.start

    def test_seed_reproducible(self):
        a = random_waypoint_trace(8, duration=1000.0, config=DENSE, rng=6)
        b = random_waypoint_trace(8, duration=1000.0, config=DENSE, rng=6)
        assert len(a) == len(b)
        assert a.records[0] == b.records[0]

    def test_sparse_world_raises_when_empty(self):
        lonely = RandomWaypointConfig(
            width=100000.0, height=100000.0, radio_range=1.0,
        )
        with pytest.raises(RuntimeError, match="no contacts"):
            random_waypoint_trace(2, duration=10.0, config=lonely, rng=7)

    def test_trace_feeds_rate_estimation(self):
        """The mobility substrate plugs into the standard pipeline."""
        trace = random_waypoint_trace(12, duration=4000.0, config=DENSE, rng=8)
        graph = estimate_rates_from_trace(trace.normalized())
        assert graph.mean_rate() > 0

    def test_denser_radio_means_more_contacts(self):
        import dataclasses

        short = dataclasses.replace(DENSE, radio_range=5.0)
        wide = dataclasses.replace(DENSE, radio_range=30.0)
        few = random_waypoint_trace(10, duration=1500.0, config=short, rng=9)
        many = random_waypoint_trace(10, duration=1500.0, config=wide, rng=9)
        assert len(many) > len(few)

"""Shared-memory arena lifecycle: round-trips, ownership, crash safety.

The zero-copy transport has one invariant that matters above all others:
after the owner releases an arena, ``/dev/shm`` holds no ``reproarena-*``
segment — no matter how many workers were SIGKILLed mid-chunk. These
tests exercise the descriptor round-trip, the idempotent ownership API,
the pool-owned and per-call arena lifecycles, and the crash path through
the supervised dispatcher (worker functions live at module level so the
``fork`` start method pickles them by reference).
"""

import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.adversary.kernel import SecurityTrialBlock, sample_security_block
from repro.contacts.events import (
    ColumnarEventSource,
    EventBlock,
    ExponentialContactProcess,
)
from repro.contacts.random_graph import random_contact_graph
from repro.experiments import shm
from repro.experiments.parallel import (
    WorkerPool,
    run_parallel_batch,
    run_parallel_montecarlo,
)
from repro.experiments.runners import (
    run_random_graph_batch,
    security_montecarlo,
)
from repro.experiments.shm import (
    BlockDescriptor,
    SharedBlockArena,
    attach_block,
    detach_attached,
    leaked_arena_segments,
)
from repro.utils.resilience import WORKER_CRASH, ExecutionReport, RetryPolicy


@pytest.fixture
def graph():
    return random_contact_graph(20, (4.0, 30.0), rng=np.random.default_rng(7))


@pytest.fixture
def event_block(graph):
    return ExponentialContactProcess(
        graph, rng=np.random.default_rng(5)
    ).events_until_columnar(240.0)


def _force_worker_attach(descriptor: BlockDescriptor):
    """Attach as a worker would: bypass the owner-process shortcut."""
    original = shm._OWNED.pop(descriptor.shm_name)
    try:
        return attach_block(descriptor)
    finally:
        shm._OWNED[descriptor.shm_name] = original


class TestRoundTrip:
    def test_event_block_round_trips_bitwise(self, event_block):
        arena = SharedBlockArena()
        try:
            descriptor = arena.register(event_block)
            rebuilt = _force_worker_attach(descriptor)
            assert rebuilt is not event_block
            np.testing.assert_array_equal(rebuilt.times, event_block.times)
            np.testing.assert_array_equal(rebuilt.a, event_block.a)
            np.testing.assert_array_equal(rebuilt.b, event_block.b)
        finally:
            detach_attached()
            arena.unlink()
        assert leaked_arena_segments() == []

    def test_attached_views_are_read_only(self, event_block):
        arena = SharedBlockArena()
        try:
            rebuilt = _force_worker_attach(arena.register(event_block))
            with pytest.raises(ValueError):
                rebuilt.times[0] = -1.0
        finally:
            detach_attached()
            arena.unlink()

    def test_security_block_round_trips_bitwise(self):
        block = sample_security_block(
            30, 4, k_max=3, l_max=2, trials=50,
            rng=np.random.default_rng(11), overlapping=False,
        )
        arena = SharedBlockArena()
        try:
            rebuilt = _force_worker_attach(arena.register(block))
            assert isinstance(rebuilt, SecurityTrialBlock)
            assert (rebuilt.n, rebuilt.group_size, rebuilt.overlapping) == (
                block.n, block.group_size, block.overlapping
            )
            np.testing.assert_array_equal(rebuilt.sources, block.sources)
            np.testing.assert_array_equal(
                rebuilt.destinations, block.destinations
            )
            np.testing.assert_array_equal(
                rebuilt.copy_members, block.copy_members
            )
            np.testing.assert_array_equal(
                rebuilt.compromise_keys, block.compromise_keys
            )
        finally:
            detach_attached()
            arena.unlink()
        assert leaked_arena_segments() == []

    def test_owner_process_attach_returns_registered_object(self, event_block):
        arena = SharedBlockArena()
        try:
            descriptor = arena.register(event_block)
            assert attach_block(descriptor) is event_block
        finally:
            arena.unlink()

    def test_descriptor_is_small(self, event_block):
        import pickle

        arena = SharedBlockArena()
        try:
            descriptor = arena.register(event_block)
            assert len(pickle.dumps(descriptor)) < 1024
            assert descriptor.nbytes >= event_block.times.nbytes
        finally:
            arena.unlink()


class TestOwnership:
    def test_register_is_idempotent_per_block(self, event_block):
        arena = SharedBlockArena()
        try:
            first = arena.register(event_block)
            second = arena.register(event_block)
            assert first == second
            assert len(arena) == 1
        finally:
            arena.unlink()

    def test_unlink_is_idempotent(self, event_block):
        arena = SharedBlockArena()
        arena.register(event_block)
        arena.unlink()
        arena.unlink()
        assert leaked_arena_segments() == []

    def test_dropped_arena_releases_segments(self, event_block):
        arena = SharedBlockArena()
        name = arena.register(event_block).shm_name
        assert any(name in leaked for leaked in leaked_arena_segments())
        del arena  # the weakref.finalize backstop must fire
        assert leaked_arena_segments() == []

    def test_register_rejects_foreign_types(self):
        arena = SharedBlockArena()
        with pytest.raises(TypeError):
            arena.register(np.zeros(4))

    def test_attach_rejects_unknown_kind(self, event_block):
        arena = SharedBlockArena()
        try:
            descriptor = arena.register(event_block)._replace(kind="mystery")
            shm._OWNED.pop(descriptor.shm_name)
            with pytest.raises(ValueError, match="mystery"):
                attach_block(descriptor)
        finally:
            detach_attached()
            arena.unlink()


def _kill_once_batch(
    graph, group_size, onion_routers, copies, horizon,
    sessions=None, rng=None, events=None, fuse_dir=None,
):
    """One chunk SIGKILLs its worker mid-run; retries replay cleanly."""
    fuse = Path(fuse_dir) / "kill.fuse"
    try:
        fuse.unlink()
        os.kill(os.getpid(), signal.SIGKILL)
    except FileNotFoundError:
        pass
    return run_random_graph_batch(
        graph, group_size, onion_routers, copies=copies, horizon=horizon,
        sessions=sessions, rng=rng, events=events,
    )


def _signature(pairs):
    return [
        (o.delivered, o.delivery_time, o.transmissions, o.status)
        for _, o in pairs
    ]


class TestCrashSafety:
    def test_sigkilled_worker_chunk_requeues_identically(
        self, graph, event_block, tmp_path
    ):
        kwargs = dict(
            graph=graph, group_size=4, onion_routers=2, copies=1,
            horizon=240.0, fuse_dir=str(tmp_path),
        )

        def run(pool_args):
            return _signature(
                run_parallel_batch(
                    _kill_once_batch,
                    sessions=12,
                    rng=np.random.default_rng(23),
                    shared_events=event_block,
                    **pool_args,
                    **kwargs,
                )
            )

        clean = run(dict(workers=2))
        (tmp_path / "kill.fuse").write_text("armed")
        report = ExecutionReport()
        with WorkerPool(
            2,
            max_processes=2,
            policy=RetryPolicy(max_retries=2, backoff=0.0, jitter=0.0),
            report=report,
        ) as pool:
            crashed = run(dict(workers=pool))
            # The arena outlives the crash-restart: segments stay mapped
            # until close(), which runs on the with-exit below.
            assert len(pool.arena) == 1
        assert crashed == clean
        assert report.counts().get(WORKER_CRASH, 0) >= 1
        assert leaked_arena_segments() == []

    def test_int_workers_arena_released_on_completion(self, graph, event_block):
        run_parallel_batch(
            run_random_graph_batch,
            sessions=8,
            workers=2,
            rng=np.random.default_rng(3),
            shared_events=event_block,
            graph=graph,
            group_size=4,
            onion_routers=2,
            copies=1,
            horizon=240.0,
        )
        assert leaked_arena_segments() == []

    def test_int_workers_arena_released_on_chunk_error(self, graph, event_block):
        def boom(**kwargs):
            raise RuntimeError("synthetic failure")

        boom.__name__ = "boom"
        with pytest.raises(RuntimeError):
            run_parallel_batch(
                boom,
                sessions=8,
                workers=1,  # workers=1 calls inline; use 2 for the arena path
                rng=np.random.default_rng(3),
                graph=graph,
            )
        # The shared path's try/finally is what the next assert exercises.
        with pytest.raises(Exception):
            run_parallel_batch(
                _kill_once_batch,
                sessions=8,
                workers=2,
                rng=np.random.default_rng(3),
                shared_events=event_block,
                graph=graph,
                group_size=400,  # invalid: every chunk raises
                onion_routers=2,
                copies=1,
                horizon=240.0,
                fuse_dir="/nonexistent",
            )
        assert leaked_arena_segments() == []


class TestSharedMontecarlo:
    def test_shared_block_matches_per_chunk_draws(self):
        block = sample_security_block(
            40, 5, k_max=3, l_max=1, trials=64,
            rng=np.random.default_rng(9), overlapping=False,
        )
        shared = run_parallel_montecarlo(
            security_montecarlo,
            trials=64,
            workers=2,
            rng=np.random.default_rng(1),
            shared_block=block,
            n=40,
            group_size=5,
            onion_routers=3,
            copies=1,
            compromise_rate=0.2,
        )
        # The slice of the parent block a chunk scores equals the matching
        # rows of scoring the whole block (trials are independent), so the
        # trial-weighted merge must equal one full-block evaluation.
        full = security_montecarlo(
            40, 5, 3, 1, 0.2, trials=64,
            rng=np.random.default_rng(99), block=block,
        )
        assert shared == pytest.approx(full, abs=1e-12)
        assert leaked_arena_segments() == []

    def test_shared_block_validates_trials(self):
        block = sample_security_block(
            40, 5, k_max=2, l_max=1, trials=32,
            rng=np.random.default_rng(9), overlapping=False,
        )
        with pytest.raises(ValueError):
            run_parallel_montecarlo(
                security_montecarlo,
                trials=64,
                workers=2,
                rng=1,
                shared_block=block,
                n=40,
                group_size=5,
                onion_routers=2,
                copies=1,
                compromise_rate=0.2,
            )

    def test_slice_trials_views(self):
        block = sample_security_block(
            30, 4, k_max=2, l_max=2, trials=20,
            rng=np.random.default_rng(4), overlapping=True,
        )
        part = block.slice_trials(5, 15)
        assert part.trials == 10
        assert part.n == block.n and part.overlapping is True
        np.testing.assert_array_equal(part.sources, block.sources[5:15])
        assert np.shares_memory(part.copy_members, block.copy_members)
        with pytest.raises(ValueError):
            block.slice_trials(10, 25)

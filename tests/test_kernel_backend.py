"""The kernel-backend registry and its byte-identity contract.

Backends (:mod:`repro.sim.backend`) promise three things:

* **Selection** — resolved by *name* (argument → ``REPRO_KERNEL_BACKEND``
  → numpy), unknown names fail loudly, known-but-unavailable backends
  degrade to numpy with a fallback notification (surfaced by the engine
  as a ``KernelFallback`` resilience event).
* **Equivalence** — every backend computes identical results from the
  same columns: single-copy sweeps, multi-copy sweeps, fused sweeps,
  security scoring, and streamed windows are byte-identical across
  numpy and every compiled backend available in the environment.
* **Resilience** — a compiled op that raises mid-run degrades to numpy
  without changing outcomes, recording the degradation on the kernel
  (and, through the engine, as a resilience event).

The compiled-backend cases parametrize over whatever is actually
available here (the ``cc`` backend wherever a C compiler is on PATH; the
numba arm runs in the CI leg that installs the ``perf`` extra).
"""

import numpy as np
import pytest

from repro.contacts.events import (
    ColumnarEventSource,
    EventBlock,
    ExponentialContactProcess,
)
from repro.contacts.random_graph import random_contact_graph
from repro.core.multi_copy import MultiCopySession
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.single_copy import SingleCopySession
from repro.experiments.runners import (
    SweepVariant,
    run_fused_graph_sweep,
    run_random_graph_batch,
    sample_endpoints,
    security_montecarlo,
)
from repro.sim.backend import (
    BACKENDS,
    ENV_VAR,
    CcBackend,
    CupyBackend,
    KernelBackend,
    NumbaBackend,
    NumpyBackend,
    _reset_backend_caches,
    available_backends,
    check_backend_name,
    preferred_compiled_backend,
    resolve_backend,
)
from repro.sim.engine import SimulationEngine
from repro.sim.kernel import BatchKernel, MultiCopyBatchKernel
from repro.sim.message import Message
from repro.utils.resilience import KERNEL_FALLBACK

COMPILED = [name for name in ("numba", "cc") if BACKENDS[name].available()]


def outcome_fields(outcomes):
    return [
        (
            o.delivered,
            o.delivery_time,
            o.transmissions,
            o.expired_copies,
            o.lost_copies,
            o.created_at,
            o.status,
            tuple(tuple(p) for p in o.paths),
            tuple(o.transfers),
        )
        for o in outcomes
    ]


def single_copy_workload(n=40, group_size=4, onion_routers=3, sessions=60,
                         horizon=360.0, seed=7):
    """(session factory, block) over one seeded random-graph window."""
    graph = random_contact_graph(n, (10.0, 120.0), rng=np.random.default_rng(seed))
    generator = np.random.default_rng(seed)
    directory = OnionGroupDirectory(n, group_size, rng=generator)
    process = ExponentialContactProcess(graph, rng=generator)
    specs = []
    for _ in range(sessions):
        src, dst = sample_endpoints(n, generator)
        route = directory.select_route(src, dst, onion_routers, rng=generator)
        specs.append((src, dst, route))
    block = process.events_until_columnar(horizon)

    def fresh():
        return [
            SingleCopySession(Message(src, dst, 0.0, horizon), route)
            for src, dst, route in specs
        ]

    return fresh, block


# ----------------------------------------------------------------------
# registry and selection
# ----------------------------------------------------------------------


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert NumpyBackend.available()
        assert NumpyBackend.unavailable_reason() is None

    def test_check_backend_name(self):
        check_backend_name(None)
        check_backend_name("numpy")
        check_backend_name(resolve_backend("numpy"))
        with pytest.raises(ValueError, match="unknown kernel backend"):
            check_backend_name("fortran")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            check_backend_name(42)

    def test_resolve_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_resolve_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_resolve_passes_instances_through(self):
        backend = resolve_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_resolved_backends_are_singletons(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_preferred_compiled_backend_ranking(self):
        # numba > cc > cupy: the GPU backend ranks last because its
        # delivery ops delegate to numpy — it only accelerates the
        # security ops.
        preferred = preferred_compiled_backend()
        if NumbaBackend.available():
            assert preferred == "numba"
        elif CcBackend.available():
            assert preferred == "cc"
        elif CupyBackend.available():
            assert preferred == "cupy"
        else:
            assert preferred is None

    def test_warmup_is_safe_on_every_available_backend(self):
        for name in available_backends():
            resolve_backend(name).warmup()


class TestUnavailableFallback:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        _reset_backend_caches()
        yield
        _reset_backend_caches()

    def test_blocked_numba_degrades_to_numpy_with_callback(self, monkeypatch):
        # Poisoning sys.modules makes ``import numba`` raise even when the
        # package is installed, so this path is exercised in every
        # environment — including the CI leg that has the perf extra.
        monkeypatch.setitem(__import__("sys").modules, "numba", None)
        assert not NumbaBackend.available()
        assert "numba" not in available_backends()
        assert "perf" in NumbaBackend.unavailable_reason()

        seen = []
        backend = resolve_backend(
            "numba", on_fallback=lambda name, error: seen.append((name, error))
        )
        assert backend.name == "numpy"
        assert [name for name, _ in seen] == ["numba"]

    def test_blocked_numba_without_callback_logs_and_degrades(
        self, monkeypatch, caplog
    ):
        monkeypatch.setitem(__import__("sys").modules, "numba", None)
        with caplog.at_level("WARNING", logger="repro.sim.backend"):
            backend = resolve_backend("numba")
        assert backend.name == "numpy"
        assert any("degrading to numpy" in r.message for r in caplog.records)

    def test_engine_records_kernel_fallback_event(self, monkeypatch):
        monkeypatch.setitem(__import__("sys").modules, "numba", None)
        fresh, block = single_copy_workload(sessions=20)

        def run_engine(backend):
            engine = SimulationEngine(
                ColumnarEventSource(block),
                horizon=360.0,
                consume="kernel",
                backend=backend,
            )
            batch = fresh()
            for session in batch:
                engine.add_session(session)
            engine.run()
            return engine, [s.outcome() for s in batch]

        degraded_engine, degraded = run_engine("numba")
        plain_engine, plain = run_engine(None)

        assert outcome_fields(degraded) == outcome_fields(plain)
        events = [
            e for e in degraded_engine.fallback_events if e.kind == KERNEL_FALLBACK
        ]
        assert events and "numba" in events[0].where
        assert plain_engine.fallback_events == ()


# ----------------------------------------------------------------------
# byte identity across backends
# ----------------------------------------------------------------------


@pytest.mark.skipif(not COMPILED, reason="no compiled backend available")
@pytest.mark.parametrize("backend", COMPILED)
class TestCompiledIdentity:
    def test_single_copy_sweep_identical(self, backend):
        fresh, block = single_copy_workload()
        results = {}
        for name in ("numpy", backend):
            batch = fresh()
            kernel = BatchKernel(batch, backend=name)
            dispatched = kernel.run(block)
            results[name] = (
                dispatched,
                kernel.pending,
                outcome_fields(s.outcome() for s in batch),
                [(s.holder, s.next_hop, s.state_version, s.done) for s in batch],
            )
        assert results["numpy"] == results[backend]

    def test_single_copy_streamed_windows_identical(self, backend):
        fresh, block = single_copy_workload(horizon=480.0, seed=11)
        batch_oneshot = fresh()
        oneshot = BatchKernel(batch_oneshot, backend=backend)
        oneshot.run(block)

        batch_stream = fresh()
        streamed = BatchKernel(batch_stream, backend=backend)
        cut = len(block) // 3
        windows = (
            EventBlock(block.times[:cut], block.a[:cut], block.b[:cut]),
            EventBlock(block.times[cut:], block.a[cut:], block.b[cut:]),
        )
        for window in windows:
            streamed.run(window)
        assert outcome_fields(s.outcome() for s in batch_stream) == outcome_fields(
            s.outcome() for s in batch_oneshot
        )
        assert streamed.dispatches == oneshot.dispatches
        assert streamed.pending == oneshot.pending

    def test_multi_copy_sweep_identical(self, backend):
        graph = random_contact_graph(30, (10.0, 120.0), rng=np.random.default_rng(5))
        runs = {}
        for name in ("numpy", backend):
            pairs = run_random_graph_batch(
                graph,
                4,
                2,
                copies=3,
                horizon=360.0,
                sessions=40,
                rng=np.random.default_rng(5),
                consume="kernel",
                backend=name,
            )
            runs[name] = outcome_fields(outcome for _, outcome in pairs)
        assert runs["numpy"] == runs[backend]

    def test_fused_sweep_identical(self, backend):
        graph = random_contact_graph(30, (10.0, 120.0), rng=np.random.default_rng(3))
        variants = [
            SweepVariant(label="g=2", group_size=2, onion_routers=2, copies=1),
            SweepVariant(label="L=2", group_size=3, onion_routers=2, copies=2),
        ]
        runs = {}
        for name in ("numpy", backend):
            sweep = run_fused_graph_sweep(
                graph,
                variants,
                horizon=360.0,
                sessions_per_variant=25,
                rng=np.random.default_rng(3),
                backend=name,
            )
            runs[name] = [
                outcome_fields(outcome for _, outcome in batch) for batch in sweep
            ]
        assert runs["numpy"] == runs[backend]

    def test_security_montecarlo_identical(self, backend):
        runs = {}
        for name in ("numpy", backend):
            runs[name] = security_montecarlo(
                40,
                4,
                3,
                2,
                compromise_rate=0.2,
                trials=300,
                rng=np.random.default_rng(17),
                backend=name,
            )
        assert runs["numpy"] == runs[backend]

    def test_run_length_op_identical(self, backend):
        bits = (np.random.default_rng(2).random((200, 11)) < 0.4).astype(np.int8)
        reference = resolve_backend("numpy").run_length_square_sums(bits)
        compiled = resolve_backend(backend).run_length_square_sums(bits)
        assert np.array_equal(reference, compiled)

    def test_stats_reflect_trajectory_sweep(self, backend):
        fresh, block = single_copy_workload()
        kernel = BatchKernel(fresh(), backend=backend)
        kernel.run(block)
        stats = kernel.stats
        assert stats["backend"] == backend
        # The compiled path computes whole trajectories: one backend round
        # regardless of route depth.
        assert stats["rounds"] == 1
        assert stats["scalar_dispatches"] == kernel.dispatches > 0
        assert stats["backend_seconds"] >= 0.0
        assert stats["dispatch_seconds"] >= 0.0
        assert stats["active_peak"] == stats["active_total"] > 0


# ----------------------------------------------------------------------
# mid-run degradation (the resilience ladder, backend rung)
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not CcBackend.available(), reason="cc backend needs a C compiler"
)
class TestMidRunDegradation:
    def test_single_copy_degrades_and_matches_numpy(self, monkeypatch):
        fresh, block = single_copy_workload()
        batch_numpy = fresh()
        BatchKernel(batch_numpy, backend="numpy").run(block)

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected compiled-op failure")

        monkeypatch.setattr(CcBackend, "single_trajectories", explode)
        batch_cc = fresh()
        kernel = BatchKernel(batch_cc, backend="cc")
        kernel.run(block)

        assert kernel.backend == "numpy"
        assert kernel.stats["backend"] == "numpy"
        assert len(kernel.backend_fallbacks) == 1
        assert "single_trajectories" in kernel.backend_fallbacks[0]
        assert "injected compiled-op failure" in kernel.backend_fallbacks[0]
        assert outcome_fields(s.outcome() for s in batch_cc) == outcome_fields(
            s.outcome() for s in batch_numpy
        )

    def test_multi_copy_degrades_and_matches_numpy(self, monkeypatch):
        graph = random_contact_graph(30, (10.0, 120.0), rng=np.random.default_rng(5))

        def run_with(backend):
            return run_random_graph_batch(
                graph,
                4,
                2,
                copies=3,
                horizon=360.0,
                sessions=30,
                rng=np.random.default_rng(5),
                consume="kernel",
                backend=backend,
            )

        reference = outcome_fields(o for _, o in run_with("numpy"))

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected multi-copy failure")

        monkeypatch.setattr(CcBackend, "multi_next_events", explode)
        degraded = outcome_fields(o for _, o in run_with("cc"))
        assert degraded == reference

    def test_engine_surfaces_mid_run_degradation(self, monkeypatch):
        fresh, block = single_copy_workload(sessions=20)

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected compiled-op failure")

        monkeypatch.setattr(CcBackend, "single_trajectories", explode)
        engine = SimulationEngine(
            ColumnarEventSource(block),
            horizon=360.0,
            consume="kernel",
            backend="cc",
        )
        for session in fresh():
            engine.add_session(session)
        engine.run()

        events = [e for e in engine.fallback_events if e.kind == KERNEL_FALLBACK]
        assert events
        assert any("injected compiled-op failure" in e.detail for e in events)
        assert engine.kernel_stats and engine.kernel_stats[0]["backend"] == "numpy"


# ----------------------------------------------------------------------
# kernel bookkeeping shared by every backend
# ----------------------------------------------------------------------


class TestKernelBookkeeping:
    def test_numpy_stats_and_pending(self):
        fresh, block = single_copy_workload()
        batch = fresh()
        kernel = BatchKernel(batch, backend="numpy")
        assert kernel.pending == len(batch)
        kernel.run(block)
        stats = kernel.stats
        assert stats["backend"] == "numpy"
        assert stats["rounds"] >= 1
        assert stats["scalar_dispatches"] == kernel.dispatches > 0
        assert kernel.pending == sum(1 for s in batch if not s.done)
        # Incremental pending stays consistent across further (empty) runs.
        kernel.run(EventBlock.empty())
        assert kernel.pending == sum(1 for s in batch if not s.done)

    def test_engine_kernel_stats_exposed(self):
        fresh, block = single_copy_workload(sessions=20)
        engine = SimulationEngine(
            ColumnarEventSource(block), horizon=360.0, consume="kernel"
        )
        for session in fresh():
            engine.add_session(session)
        engine.run()
        stats = engine.kernel_stats
        assert stats and stats[0]["backend"] == "numpy"
        assert stats[0]["scalar_dispatches"] > 0

    def test_backend_knob_rejects_typo_at_construction(self):
        fresh, block = single_copy_workload(sessions=5)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            SimulationEngine(
                ColumnarEventSource(block),
                horizon=360.0,
                consume="kernel",
                backend="fortran",
            )
        with pytest.raises(ValueError, match="unknown kernel backend"):
            BatchKernel(fresh(), backend="fortran")

    def test_multicopy_backend_knob_rejects_typo(self):
        directory = OnionGroupDirectory(20, 3, rng=np.random.default_rng(0))
        route = directory.select_route(0, 9, 2, rng=np.random.default_rng(0))
        session = MultiCopySession(Message(0, 9, 0.0, 100.0), route, copies=2)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            MultiCopyBatchKernel([session], backend="fortran")

    def test_backend_base_class_ops_are_abstract(self):
        backend = KernelBackend()
        with pytest.raises(NotImplementedError):
            backend.run_length_square_sums(np.zeros((1, 1), dtype=np.int8))
        with pytest.raises(NotImplementedError):
            backend.smallest_k_mask(np.zeros((1, 1)), 1)
        with pytest.raises(NotImplementedError):
            backend.security_scores(
                np.zeros((1, 1), dtype=bool),
                np.zeros(1, dtype=np.int64),
                np.zeros((1, 1, 1), dtype=np.int64),
                1,
                1,
            )

"""Property-based protocol invariants under random contact sequences.

Hypothesis generates arbitrary contact streams; every protocol session
must maintain its invariants regardless of the order, density, or timing
of contacts: bounded transmissions, valid paths, deadline discipline, and
no delivery without traversing the required structure.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import multi_copy_cost_bound, single_copy_cost
from repro.contacts.events import ContactEvent
from repro.core.multi_copy import MultiCopySession, SprayPolicy
from repro.core.route import OnionRoute
from repro.core.single_copy import SingleCopySession
from repro.extensions.alar import AlarSession
from repro.extensions.tps import TpsRoute, TpsSession
from repro.sim.message import Message

N = 12
SOURCE, DESTINATION = 0, 11
ROUTE = OnionRoute(
    source=SOURCE,
    destination=DESTINATION,
    group_ids=(0, 1),
    groups=((2, 3, 4), (5, 6, 7)),
)
TPS_ROUTE = TpsRoute(
    source=SOURCE, destination=DESTINATION, relays=(2, 3, 4), pivot=8,
    threshold=2,
)
DEADLINE = 1000.0

contact_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=N - 1),
    ).filter(lambda triple: triple[1] != triple[2]),
    max_size=120,
)


def _feed(session, stream):
    for time, a, b in sorted(stream):
        session.on_contact(ContactEvent(time=time, a=a, b=b))
    return session.outcome()


def _message():
    return Message(SOURCE, DESTINATION, created_at=0.0, deadline=DEADLINE)


class TestSingleCopyInvariants:
    @given(stream=contact_streams)
    @settings(max_examples=150, deadline=None)
    def test_transmissions_bounded_and_path_valid(self, stream):
        session = SingleCopySession(_message(), ROUTE)
        outcome = _feed(session, stream)
        assert outcome.transmissions <= single_copy_cost(ROUTE.onion_routers)
        path = outcome.paths[0]
        assert path[0] == SOURCE
        assert len(path) <= ROUTE.eta
        # every relay on the path belongs to the group of its hop
        for hop, relay in enumerate(path[1:], start=1):
            assert relay in ROUTE.groups[hop - 1]

    @given(stream=contact_streams)
    @settings(max_examples=150, deadline=None)
    def test_delivery_requires_full_path(self, stream):
        session = SingleCopySession(_message(), ROUTE)
        outcome = _feed(session, stream)
        if outcome.delivered:
            assert len(outcome.paths[0]) == ROUTE.eta
            assert outcome.transmissions == ROUTE.eta
            assert outcome.delivery_time <= DEADLINE

    @given(stream=contact_streams)
    @settings(max_examples=100, deadline=None)
    def test_no_event_after_done_changes_outcome(self, stream):
        session = SingleCopySession(_message(), ROUTE)
        _feed(session, stream)
        snapshot = (
            session.outcome().delivered,
            session.outcome().transmissions,
        )
        if session.done:
            session.on_contact(ContactEvent(time=3000.0, a=SOURCE, b=2))
            assert (
                session.outcome().delivered,
                session.outcome().transmissions,
            ) == snapshot


class TestMultiCopyInvariants:
    @given(
        stream=contact_streams,
        copies=st.integers(min_value=1, max_value=3),
        policy=st.sampled_from([SprayPolicy.SOURCE, SprayPolicy.BINARY]),
    )
    @settings(max_examples=150, deadline=None)
    def test_cost_bound_holds(self, stream, copies, policy):
        session = MultiCopySession(
            _message(), ROUTE, copies=copies, spray_policy=policy
        )
        outcome = _feed(session, stream)
        assert outcome.transmissions <= multi_copy_cost_bound(
            ROUTE.onion_routers, copies
        )

    @given(stream=contact_streams, copies=st.integers(min_value=1, max_value=3))
    @settings(max_examples=150, deadline=None)
    def test_copy_paths_are_group_consistent(self, stream, copies):
        session = MultiCopySession(_message(), ROUTE, copies=copies)
        outcome = _feed(session, stream)
        assert 1 <= len(outcome.paths) <= copies
        for path in outcome.paths:
            assert path[0] == SOURCE
            for hop, relay in enumerate(path[1:], start=1):
                assert relay in ROUTE.groups[hop - 1]

    @given(stream=contact_streams, copies=st.integers(min_value=2, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_no_node_holds_two_live_copies(self, stream, copies):
        session = MultiCopySession(_message(), ROUTE, copies=copies)
        for time, a, b in sorted(stream):
            session.on_contact(ContactEvent(time=time, a=a, b=b))
            holders = [
                copy.holder
                for copy in session._copies
                if not copy.terminated
            ]
            assert len(holders) == len(set(holders))


class TestTpsInvariants:
    @given(stream=contact_streams)
    @settings(max_examples=150, deadline=None)
    def test_transmission_bound(self, stream):
        session = TpsSession(_message(), TPS_ROUTE)
        outcome = _feed(session, stream)
        # each share: source->relay + relay->pivot, plus one delivery
        assert outcome.transmissions <= 2 * TPS_ROUTE.shares + 1

    @given(stream=contact_streams)
    @settings(max_examples=150, deadline=None)
    def test_delivery_requires_reconstruction(self, stream):
        session = TpsSession(_message(), TPS_ROUTE)
        outcome = _feed(session, stream)
        if outcome.delivered:
            assert session.reconstructed
            assert session.reconstruction_time <= outcome.delivery_time
            assert session.shares_at_pivot >= TPS_ROUTE.threshold


class TestAlarInvariants:
    @given(
        stream=contact_streams,
        segments=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_first_receivers_distinct_and_capped(self, stream, segments):
        session = AlarSession(_message(), segments=segments)
        _feed(session, stream)
        receivers = session.first_receivers
        assert len(receivers) == len(set(receivers))
        assert len(receivers) <= segments
        assert DESTINATION not in receivers

    @given(stream=contact_streams, cap=st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_copies_cap_never_exceeded(self, stream, cap):
        session = AlarSession(_message(), segments=2, copies_per_segment=cap)
        _feed(session, stream)
        for holders in session._holders:
            assert len(holders) <= cap

    @given(stream=contact_streams)
    @settings(max_examples=100, deadline=None)
    def test_delivery_needs_all_segments(self, stream):
        session = AlarSession(_message(), segments=3)
        outcome = _feed(session, stream)
        if outcome.delivered:
            assert session.segments_collected == 3

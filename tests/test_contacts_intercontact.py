"""Tests for inter-contact time sampling and rate estimation."""

import math

import numpy as np
import pytest

from repro.contacts.intercontact import (
    empirical_mean_intercontact,
    estimate_rates_from_trace,
    sample_intercontact_times,
)
from repro.contacts.traces import ContactRecord, ContactTrace


class TestSampleIntercontactTimes:
    def test_mean_close_to_inverse_rate(self):
        samples = sample_intercontact_times(0.1, 20000, rng=0)
        assert samples.mean() == pytest.approx(10.0, rel=0.05)

    def test_all_positive(self):
        assert (sample_intercontact_times(2.0, 100, rng=1) > 0).all()

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            sample_intercontact_times(0.0, 10)


class TestEstimateRatesFromTrace:
    def _trace(self):
        # Pair (0,1) meets 4 times over a 100-unit span, pair (1,2) once.
        records = [
            ContactRecord(a=0, b=1, start=t, end=t + 1) for t in (0, 25, 50, 75)
        ]
        records.append(ContactRecord(a=1, b=2, start=100, end=101))
        return ContactTrace(records)

    def test_frequency_estimator(self):
        graph = estimate_rates_from_trace(self._trace(), observation_span=100.0)
        assert graph.rate(0, 1) == pytest.approx(0.04)
        assert graph.rate(1, 2) == pytest.approx(0.01)

    def test_missing_pairs_get_zero(self):
        graph = estimate_rates_from_trace(self._trace(), observation_span=100.0)
        assert graph.rate(0, 2) == 0.0

    def test_defaults_to_trace_duration(self):
        trace = self._trace()
        graph = estimate_rates_from_trace(trace)
        assert graph.rate(0, 1) == pytest.approx(4 / trace.duration)

    def test_requires_dense_ids(self):
        trace = ContactTrace([ContactRecord(a=5, b=9, start=0, end=1)])
        with pytest.raises(ValueError, match="dense"):
            estimate_rates_from_trace(trace)

    def test_estimator_consistency_on_synthetic_poisson(self):
        """Estimated rate converges to the true rate of a Poisson pair."""
        rng = np.random.default_rng(7)
        true_rate, horizon = 0.05, 20000.0
        t, records = 0.0, []
        while True:
            t += rng.exponential(1 / true_rate)
            if t > horizon:
                break
            records.append(ContactRecord(a=0, b=1, start=t, end=t + 0.5))
        trace = ContactTrace(records)
        graph = estimate_rates_from_trace(trace.normalized(), observation_span=horizon)
        assert graph.rate(0, 1) == pytest.approx(true_rate, rel=0.1)


class TestEmpiricalMeanIntercontact:
    def test_gap_mean(self):
        trace = ContactTrace(
            [ContactRecord(a=0, b=1, start=t, end=t + 1) for t in (0, 10, 30)]
        )
        assert empirical_mean_intercontact(trace, 0, 1) == pytest.approx(15.0)

    def test_single_contact_gives_inf(self):
        trace = ContactTrace([ContactRecord(a=0, b=1, start=0, end=1)])
        assert empirical_mean_intercontact(trace, 0, 1) == math.inf

    def test_order_insensitive(self):
        trace = ContactTrace(
            [ContactRecord(a=1, b=0, start=t, end=t + 1) for t in (0, 20)]
        )
        assert empirical_mean_intercontact(trace, 0, 1) == pytest.approx(20.0)

"""Shared fixtures: small deterministic graphs, directories, and routes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.contacts.graph import ContactGraph
from repro.core.onion_groups import OnionGroupDirectory


@pytest.fixture
def rng():
    """A fixed-seed generator; tests that need determinism reseed locally."""
    return np.random.default_rng(12345)


@pytest.fixture
def equal_rate_graph():
    """Complete 20-node contact graph, every pair at rate 0.01."""
    return ContactGraph.complete(20, 0.01)


@pytest.fixture
def directory_20():
    """Deterministic (unshuffled) directory: 4 consecutive groups of 5."""
    return OnionGroupDirectory(20, 5)


@pytest.fixture
def route_20(directory_20):
    """A fixed route 0 → R → R' → 19 over the deterministic directory."""
    return directory_20.select_route(0, 19, 2, rng=1)

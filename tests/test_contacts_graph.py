"""Tests for the ContactGraph substrate."""

import math

import numpy as np
import pytest

from repro.contacts.graph import ContactGraph


def triangle_graph():
    """3 nodes: 0-1 at rate 0.1, 1-2 at rate 0.2, 0-2 never meets."""
    rates = np.array(
        [
            [0.0, 0.1, 0.0],
            [0.1, 0.0, 0.2],
            [0.0, 0.2, 0.0],
        ]
    )
    return ContactGraph(rates)


class TestConstruction:
    def test_basic(self):
        graph = triangle_graph()
        assert graph.n == 3
        assert graph.rate(0, 1) == pytest.approx(0.1)
        assert graph.rate(1, 0) == pytest.approx(0.1)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            ContactGraph(np.zeros((2, 3)))

    def test_rejects_single_node(self):
        with pytest.raises(ValueError, match="two nodes"):
            ContactGraph(np.zeros((1, 1)))

    def test_rejects_negative_rate(self):
        rates = np.zeros((2, 2))
        rates[0, 1] = rates[1, 0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            ContactGraph(rates)

    def test_rejects_asymmetric(self):
        rates = np.zeros((2, 2))
        rates[0, 1] = 0.5
        with pytest.raises(ValueError, match="symmetric"):
            ContactGraph(rates)

    def test_rejects_self_contact(self):
        rates = np.full((2, 2), 0.1)
        with pytest.raises(ValueError, match="diagonal"):
            ContactGraph(rates)

    def test_matrix_read_only(self):
        graph = triangle_graph()
        with pytest.raises(ValueError):
            graph.rates[0, 1] = 9.0

    def test_from_mean_intercontact(self):
        means = [[0.0, 10.0], [10.0, 0.0]]
        graph = ContactGraph.from_mean_intercontact(means)
        assert graph.rate(0, 1) == pytest.approx(0.1)

    def test_from_mean_intercontact_inf_means_never(self):
        means = [[0.0, math.inf], [math.inf, 0.0]]
        graph = ContactGraph.from_mean_intercontact(means)
        assert graph.rate(0, 1) == 0.0

    def test_complete(self):
        graph = ContactGraph.complete(5, 0.3)
        assert graph.density() == 1.0
        assert graph.rate(2, 4) == pytest.approx(0.3)


class TestAccessors:
    def test_mean_intercontact(self):
        graph = triangle_graph()
        assert graph.mean_intercontact(0, 1) == pytest.approx(10.0)
        assert graph.mean_intercontact(0, 2) == math.inf

    def test_contact_probability_matches_formula(self):
        graph = triangle_graph()
        expected = 1.0 - math.exp(-0.1 * 30.0)
        assert graph.contact_probability(0, 1, 30.0) == pytest.approx(expected)

    def test_contact_probability_zero_rate(self):
        graph = triangle_graph()
        assert graph.contact_probability(0, 2, 1e9) == 0.0

    def test_contact_probability_zero_deadline(self):
        graph = triangle_graph()
        assert graph.contact_probability(0, 1, 0.0) == 0.0

    def test_neighbors(self):
        graph = triangle_graph()
        assert list(graph.neighbors(1)) == [0, 2]
        assert list(graph.neighbors(0)) == [1]

    def test_pairs(self):
        graph = triangle_graph()
        assert sorted(graph.pairs()) == [(0, 1), (1, 2)]

    def test_degree(self):
        graph = triangle_graph()
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1

    def test_density(self):
        assert triangle_graph().density() == pytest.approx(2 / 3)

    def test_mean_rate(self):
        assert triangle_graph().mean_rate() == pytest.approx(0.15)

    def test_repr_mentions_size(self):
        assert "n=3" in repr(triangle_graph())


class TestAggregateRates:
    def test_anycast_rate_sums(self):
        graph = ContactGraph.complete(6, 0.2)
        assert graph.anycast_rate(0, [1, 2, 3]) == pytest.approx(0.6)

    def test_anycast_rate_excludes_self(self):
        graph = ContactGraph.complete(6, 0.2)
        assert graph.anycast_rate(0, [0, 1]) == pytest.approx(0.2)

    def test_group_to_group_rate_average_of_sums(self):
        graph = ContactGraph.complete(8, 0.1)
        # 2 senders x 3 receivers, all distinct: (1/2) * 6 * 0.1 = 0.3
        assert graph.group_to_group_rate([0, 1], [2, 3, 4]) == pytest.approx(0.3)

    def test_group_to_group_skips_shared_members(self):
        graph = ContactGraph.complete(8, 0.1)
        # sender 0 appears in both groups; the 0->0 pair contributes nothing
        rate = graph.group_to_group_rate([0], [0, 1])
        assert rate == pytest.approx(0.1)

    def test_group_to_group_empty_group_rejected(self):
        graph = ContactGraph.complete(4, 0.1)
        with pytest.raises(ValueError, match="non-empty"):
            graph.group_to_group_rate([], [1])


class TestNetworkxExport:
    def test_roundtrip_edges(self):
        graph = triangle_graph()
        nxg = graph.to_networkx()
        assert set(nxg.nodes) == {0, 1, 2}
        assert nxg.edges[0, 1]["rate"] == pytest.approx(0.1)

    def test_is_connected(self):
        assert triangle_graph().is_connected()

    def test_disconnected_detected(self):
        rates = np.zeros((4, 4))
        rates[0, 1] = rates[1, 0] = 0.1
        rates[2, 3] = rates[3, 2] = 0.1
        assert not ContactGraph(rates).is_connected()

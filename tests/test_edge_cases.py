"""Edge-case coverage across subsystems.

Scenarios the main suites don't reach: degenerate sizes, boundary
parameters, unusual-but-legal configurations, and determinism guarantees.
"""

import numpy as np
import pytest

from repro.contacts.events import ExponentialContactProcess
from repro.contacts.graph import ContactGraph
from repro.core.multi_copy import MultiCopySession, SprayPolicy
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.route import OnionRoute
from repro.core.single_copy import SingleCopySession
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message

from tests.helpers import feed


class TestMinimalNetworks:
    def test_smallest_possible_onion_route(self):
        """n = 3: source, one single-member group, destination."""
        route = OnionRoute(
            source=0, destination=2, group_ids=(0,), groups=((1,),)
        )
        session = SingleCopySession(
            Message(0, 2, 0.0, 100.0), route
        )
        feed(session, [(1.0, 0, 1), (2.0, 1, 2)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.transmissions == 2

    def test_two_node_graph_direct_only(self):
        graph = ContactGraph.complete(2, 0.5)
        process = ExponentialContactProcess(graph, rng=0)
        events = list(process.events_until(50.0))
        assert events
        assert all({e.a, e.b} == {0, 1} for e in events)

    def test_group_size_equals_n(self):
        directory = OnionGroupDirectory(10, 10)
        assert directory.group_count == 1
        with pytest.raises(ValueError):
            directory.select_route(0, 9, 1)  # the one group holds endpoints


class TestCopiesEqualGroupSize:
    def test_l_equals_g_spray_saturates_group(self):
        """With L = g the source can populate the whole first group."""
        route = OnionRoute(
            source=0, destination=9, group_ids=(0, 1),
            groups=((1, 2), (3, 4)),
        )
        session = MultiCopySession(
            Message(0, 9, 0.0, 100.0), route, copies=2
        )
        feed(session, [(1.0, 0, 1), (2.0, 0, 2)])
        assert session.live_copies == 2
        # the source exhausted its tickets and cannot spray again
        feed(session, [(3.0, 0, 1)])
        assert session.outcome().transmissions == 2

    def test_copies_exceeding_group_stall_gracefully(self):
        """L > g: the surplus tickets can never be spent; no crash, and the
        delivered copies still work."""
        route = OnionRoute(
            source=0, destination=9, group_ids=(0,), groups=((1, 2),)
        )
        session = MultiCopySession(
            Message(0, 9, 0.0, 100.0), route, copies=5
        )
        feed(session, [(1.0, 0, 1), (2.0, 0, 2), (3.0, 1, 9), (4.0, 2, 9)])
        outcome = session.outcome()
        assert outcome.delivered
        # 2 sprays + 2 deliveries; the source still holds 3 unusable tickets
        assert outcome.transmissions == 4
        assert not session.done  # the stalled source copy keeps the session open


class TestBinarySprayDepth:
    def test_tickets_conserved(self):
        """Total tickets across live copies never exceed L."""
        route = OnionRoute(
            source=0, destination=19,
            group_ids=(0, 1, 2),
            groups=((1, 2, 3), (4, 5, 6), (7, 8, 9)),
        )
        session = MultiCopySession(
            Message(0, 19, 0.0, 1000.0), route, copies=8,
            spray_policy=SprayPolicy.BINARY,
        )
        stream = [
            (1.0, 0, 1), (2.0, 1, 4), (3.0, 0, 2), (4.0, 4, 7),
            (5.0, 2, 5), (6.0, 5, 8),
        ]
        for event_args in stream:
            feed(session, [event_args])
            live_tickets = sum(
                copy.tickets for copy in session._copies if not copy.terminated
            )
            assert live_tickets <= 8


class TestEngineDeterminism:
    def test_same_seed_same_everything(self):
        graph = ContactGraph.complete(15, 0.05)
        directory = OnionGroupDirectory(15, 3)

        def run(seed):
            rng = np.random.default_rng(seed)
            route = directory.select_route(0, 14, 2, rng=rng)
            engine = SimulationEngine(
                ExponentialContactProcess(graph, rng=rng), horizon=300.0
            )
            session = SingleCopySession(Message(0, 14, 0.0, 300.0), route)
            engine.add_session(session)
            engine.run()
            outcome = session.outcome()
            return (
                outcome.delivered,
                outcome.delivery_time,
                tuple(outcome.paths[0]),
                engine.events_processed,
            )

        assert run(42) == run(42)
        # and different seeds genuinely differ somewhere
        results = {run(seed) for seed in range(6)}
        assert len(results) > 1


class TestSimultaneousContacts:
    def test_equal_timestamps_processed_in_order(self):
        """Two contacts at the identical instant both get dispatched."""
        route = OnionRoute(
            source=0, destination=9, group_ids=(0,), groups=((1, 2),)
        )
        session = MultiCopySession(Message(0, 9, 0.0, 10.0), route, copies=2)
        feed(session, [(1.0, 0, 1), (1.0, 0, 2)])
        assert session.live_copies == 2

    def test_delivery_and_spray_same_instant(self):
        route = OnionRoute(
            source=0, destination=9, group_ids=(0,), groups=((1, 2),)
        )
        session = MultiCopySession(Message(0, 9, 0.0, 10.0), route, copies=2)
        feed(session, [(1.0, 0, 1), (2.0, 1, 9), (2.0, 0, 2)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.delivery_time == 2.0


class TestZeroAndBoundaryParameters:
    def test_message_created_exactly_at_event_time(self):
        route = OnionRoute(
            source=0, destination=9, group_ids=(0,), groups=((1,),)
        )
        session = SingleCopySession(
            Message(0, 9, created_at=5.0, deadline=10.0), route
        )
        feed(session, [(5.0, 0, 1)])  # not before creation: must count
        assert session.holder == 1

    def test_deadline_boundary_is_inclusive(self):
        route = OnionRoute(
            source=0, destination=9, group_ids=(0,), groups=((1,),)
        )
        session = SingleCopySession(Message(0, 9, 0.0, 5.0), route)
        feed(session, [(2.0, 0, 1), (5.0, 1, 9)])
        assert session.outcome().delivered

    def test_compromise_rate_rounding(self):
        from repro.adversary.compromise import CompromiseModel

        # 12 nodes at 10% -> round(1.2) = 1 compromised node
        model = CompromiseModel(12, 0.10)
        assert len(model.sample_fixed_count(rng=0)) == 1

    def test_hypoexponential_handles_extreme_rate_spread(self):
        from repro.analysis.hypoexponential import Hypoexponential

        dist = Hypoexponential([1e-4, 1e2])
        value = dist.cdf(100.0)
        # dominated by the slow stage: P ≈ 1 - e^{-0.01}
        assert value == pytest.approx(1 - np.exp(-1e-4 * 100), abs=0.01)

    def test_anonymity_at_maximum_exposure(self):
        from repro.analysis.anonymity import path_anonymity_exact

        value = path_anonymity_exact(100, 4, 5, 4.0)
        assert 0.0 < value < 1.0  # groups keep log2(g) bits per hop

    def test_traceable_rate_full_path_compromise(self):
        from repro.adversary.tracer import PathTracer

        tracer = PathTracer({0, 1, 2, 3})
        assert tracer.traceable_rate([0, 1, 2, 3]) == 1.0

"""Tests for the ARDEN-style destination-group variant."""

import pytest

from repro.core.arden import ArdenSingleCopySession
from repro.core.route import OnionRoute
from repro.sim.message import Message

from tests.helpers import feed

ROUTE = OnionRoute(
    source=0,
    destination=19,
    group_ids=(1,),
    groups=((5, 6),),
)
DEST_GROUP = (17, 18, 19)


def _session(deadline=100.0):
    message = Message(source=0, destination=19, created_at=0.0, deadline=deadline)
    return ArdenSingleCopySession(message, ROUTE, DEST_GROUP)


class TestDelivery:
    def test_direct_hit_on_destination(self):
        session = _session()
        feed(session, [(1.0, 0, 5), (2.0, 5, 19)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.transmissions == 2

    def test_delivery_via_group_member(self):
        session = _session()
        feed(session, [(1.0, 0, 5), (2.0, 5, 17), (3.0, 17, 19)])
        outcome = session.outcome()
        assert outcome.delivered
        assert outcome.delivery_time == 3.0
        assert outcome.transmissions == 3
        assert outcome.paths[0] == [0, 5, 17]

    def test_group_member_holds_until_destination(self):
        session = _session()
        feed(session, [(1.0, 0, 5), (2.0, 5, 18), (3.0, 18, 17)])
        # in-group carrier only hands to the destination itself
        assert not session.outcome().delivered
        assert session.holder == 18

    def test_extra_hop_compared_to_abstract_protocol(self):
        """The destination-group detour may cost one extra transmission."""
        session = _session()
        feed(session, [(1.0, 0, 6), (2.0, 6, 18), (3.0, 18, 19)])
        assert session.outcome().transmissions == 3  # abstract would need 2


class TestRules:
    def test_no_shortcut_from_source(self):
        session = _session()
        feed(session, [(1.0, 0, 19)])
        assert not session.outcome().delivered

    def test_onion_groups_respected_first(self):
        session = _session()
        feed(session, [(1.0, 0, 17)])  # dest-group member before R_1
        assert session.holder == 0

    def test_deadline_enforced(self):
        session = _session(deadline=5.0)
        feed(session, [(6.0, 0, 5)])
        assert session.done
        assert not session.outcome().delivered


class TestValidation:
    def test_destination_must_be_in_group(self):
        message = Message(source=0, destination=19, created_at=0.0, deadline=10.0)
        with pytest.raises(ValueError, match="must contain"):
            ArdenSingleCopySession(message, ROUTE, (17, 18))

    def test_endpoint_mismatch(self):
        message = Message(source=2, destination=19, created_at=0.0, deadline=10.0)
        with pytest.raises(ValueError, match="do not match"):
            ArdenSingleCopySession(message, ROUTE, DEST_GROUP)

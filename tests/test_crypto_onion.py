"""Tests for onion construction and peeling (the layer-access contract)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cipher import AuthenticationError
from repro.crypto.keys import GroupKeyring
from repro.crypto.onion import build_onion, layer_overhead, pad_blob, peel_onion

MASTER = b"onion-test-master"
ROUTE = [3, 7, 1]
DESTINATION = 42
PAYLOAD = b"the commander's orders"


@pytest.fixture
def keyring():
    return GroupKeyring.for_groups(MASTER, range(10))


class TestBuildOnion:
    def test_entry_group_is_first_route_group(self, keyring):
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)
        assert onion.entry_group == 3

    def test_missing_key_raises(self, keyring):
        with pytest.raises(KeyError, match="group 99"):
            build_onion([99], DESTINATION, PAYLOAD, keyring)

    def test_empty_route_rejected(self, keyring):
        with pytest.raises(ValueError, match="at least one group"):
            build_onion([], DESTINATION, PAYLOAD, keyring)

    def test_negative_destination_rejected(self, keyring):
        with pytest.raises(ValueError, match="destination"):
            build_onion(ROUTE, -1, PAYLOAD, keyring)


class TestPeelChain:
    def test_full_peel_reveals_route_then_payload(self, keyring):
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)

        layer1 = peel_onion(onion.blob, keyring.key_for(3))
        assert not layer1.is_final
        assert layer1.next_group == 7

        layer2 = peel_onion(layer1.inner, keyring.key_for(7))
        assert not layer2.is_final
        assert layer2.next_group == 1

        layer3 = peel_onion(layer2.inner, keyring.key_for(1))
        assert layer3.is_final
        assert layer3.destination == DESTINATION
        assert layer3.inner == PAYLOAD

    def test_single_group_route(self, keyring):
        onion = build_onion([5], DESTINATION, PAYLOAD, keyring)
        layer = peel_onion(onion.blob, keyring.key_for(5))
        assert layer.is_final
        assert layer.destination == DESTINATION
        assert layer.inner == PAYLOAD


class TestAccessControl:
    def test_wrong_group_key_learns_nothing(self, keyring):
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)
        with pytest.raises(AuthenticationError):
            peel_onion(onion.blob, keyring.key_for(9))

    def test_cannot_skip_a_layer(self, keyring):
        """The second group's key cannot open the outer layer."""
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)
        with pytest.raises(AuthenticationError):
            peel_onion(onion.blob, keyring.key_for(7))

    def test_payload_not_visible_in_blob(self, keyring):
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)
        assert PAYLOAD not in onion.blob

    def test_destination_not_visible_before_last_layer(self, keyring):
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)
        layer1 = peel_onion(onion.blob, keyring.key_for(3))
        assert layer1.destination is None


class TestSizeHiding:
    def test_layers_shrink_without_repadding(self, keyring):
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)
        layer1 = peel_onion(onion.blob, keyring.key_for(3))
        assert len(layer1.inner) == len(onion.blob) - layer_overhead()

    def test_repad_restores_wire_size_and_stays_peelable(self, keyring):
        """Tor-cell style: relays re-pad to the uniform wire size."""
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)
        blob = onion.blob
        for group_id in ROUTE:
            assert len(blob) == onion.wire_size  # constant on-the-air size
            layer = peel_onion(blob, keyring.key_for(group_id))
            blob = pad_blob(layer.inner, onion.wire_size)
        assert layer.is_final
        assert layer.inner == PAYLOAD

    def test_pad_blob_rejects_oversized(self, keyring):
        onion = build_onion(ROUTE, DESTINATION, PAYLOAD, keyring)
        with pytest.raises(ValueError, match="exceeds wire size"):
            pad_blob(onion.blob + b"x", onion.wire_size)

    def test_padding_is_ignored_by_peel(self, keyring):
        onion = build_onion([5], DESTINATION, PAYLOAD, keyring)
        padded = pad_blob(onion.blob, onion.wire_size + 500)
        layer = peel_onion(padded, keyring.key_for(5))
        assert layer.inner == PAYLOAD


class TestProperties:
    @given(
        route=st.lists(st.integers(0, 9), min_size=1, max_size=6, unique=True),
        destination=st.integers(0, 1000),
        payload=st.binary(max_size=512),
    )
    @settings(max_examples=60, deadline=None)
    def test_peel_inverts_build(self, route, destination, payload):
        keyring = GroupKeyring.for_groups(MASTER, range(10))
        onion = build_onion(route, destination, payload, keyring)
        blob = onion.blob
        for hop, group_id in enumerate(route):
            layer = peel_onion(blob, keyring.key_for(group_id))
            blob = layer.inner
            if hop < len(route) - 1:
                assert not layer.is_final
                assert layer.next_group == route[hop + 1]
        assert layer.is_final
        assert layer.destination == destination
        assert blob == payload

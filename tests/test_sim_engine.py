"""Tests for the discrete-event engine."""

import pytest

from repro.contacts.events import ContactEvent
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import DeliveryOutcome
from repro.sim.protocol import ProtocolSession


class ScriptedEvents:
    """A deterministic event source for unit tests."""

    def __init__(self, events):
        self._events = sorted(events, key=lambda e: e.time)
        self._cursor = 0

    def events_until(self, horizon):
        while self._cursor < len(self._events):
            event = self._events[self._cursor]
            if event.time > horizon:
                return
            self._cursor += 1
            yield event


class RecordingSession(ProtocolSession):
    """Counts contacts; optionally finishes after ``stop_after`` events."""

    def __init__(self, stop_after=None):
        self.seen = []
        self._stop_after = stop_after

    def on_contact(self, event):
        self.seen.append(event)

    @property
    def done(self):
        return self._stop_after is not None and len(self.seen) >= self._stop_after

    def outcome(self):
        return DeliveryOutcome()


def _events(*times):
    return [ContactEvent(time=t, a=0, b=1) for t in times]


class TestSimulationEngine:
    def test_dispatches_all_events(self):
        engine = SimulationEngine(ScriptedEvents(_events(1, 2, 3)), horizon=10)
        session = engine.add_session(RecordingSession())
        engine.run()
        assert len(session.seen) == 3
        assert engine.events_processed == 3

    def test_horizon_cuts_stream(self):
        engine = SimulationEngine(ScriptedEvents(_events(1, 2, 30)), horizon=10)
        session = engine.add_session(RecordingSession())
        engine.run()
        assert len(session.seen) == 2

    def test_early_exit_when_all_done(self):
        engine = SimulationEngine(ScriptedEvents(_events(1, 2, 3, 4)), horizon=10)
        session = engine.add_session(RecordingSession(stop_after=2))
        engine.run()
        assert len(session.seen) == 2

    def test_done_sessions_skip_events_but_others_continue(self):
        engine = SimulationEngine(ScriptedEvents(_events(1, 2, 3)), horizon=10)
        finished = engine.add_session(RecordingSession(stop_after=1))
        ongoing = engine.add_session(RecordingSession())
        engine.run()
        assert len(finished.seen) == 1
        assert len(ongoing.seen) == 3

    def test_no_sessions_rejected(self):
        engine = SimulationEngine(ScriptedEvents([]), horizon=10)
        with pytest.raises(RuntimeError, match="no protocol sessions"):
            engine.run()

    def test_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            SimulationEngine(ScriptedEvents([]), horizon=0)


class RaisingSession(ProtocolSession):
    """Raises on the Nth contact it sees."""

    def __init__(self, raise_on=1):
        self.seen = 0
        self._raise_on = raise_on
        self._outcome = DeliveryOutcome()

    def on_contact(self, event):
        self.seen += 1
        if self.seen >= self._raise_on:
            raise RuntimeError("scripted failure")

    @property
    def done(self):
        return False

    def outcome(self):
        return self._outcome


class TestQuarantine:
    def _events(self, count=4):
        return ScriptedEvents(
            [ContactEvent(time=float(t), a=0, b=1) for t in range(1, count + 1)]
        )

    def test_raising_session_is_quarantined_not_fatal(self):
        engine = SimulationEngine(self._events(), horizon=10.0)
        bad = engine.add_session(RaisingSession(raise_on=2))
        good = engine.add_session(RecordingSession())
        engine.run()
        # the healthy session keeps receiving events after the failure
        assert len(good.seen) == 4
        assert bad.seen == 2  # no dispatch after quarantine
        assert len(engine.quarantined) == 1
        session, error = engine.quarantined[0]
        assert session is bad
        assert isinstance(error, RuntimeError)

    def test_quarantined_outcome_marked_failed(self):
        engine = SimulationEngine(self._events(), horizon=10.0)
        bad = engine.add_session(RaisingSession())
        engine.add_session(RecordingSession())
        engine.run()
        assert bad.outcome().status == "failed"

    def test_on_error_raise_propagates(self):
        engine = SimulationEngine(self._events(), horizon=10.0, on_error="raise")
        engine.add_session(RaisingSession())
        with pytest.raises(RuntimeError, match="scripted failure"):
            engine.run()

    def test_all_quarantined_counts_as_done(self):
        engine = SimulationEngine(self._events(), horizon=10.0)
        engine.add_session(RaisingSession())
        engine.run()
        assert engine.events_processed == 1  # early exit, everyone is done

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            SimulationEngine(self._events(), horizon=10.0, on_error="ignore")

"""Tests for the discrete-event engine."""

import pytest

from repro.contacts.events import ContactEvent
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import DeliveryOutcome
from repro.sim.protocol import ProtocolSession


class ScriptedEvents:
    """A deterministic event source for unit tests."""

    def __init__(self, events):
        self._events = sorted(events, key=lambda e: e.time)
        self._cursor = 0

    def events_until(self, horizon):
        while self._cursor < len(self._events):
            event = self._events[self._cursor]
            if event.time > horizon:
                return
            self._cursor += 1
            yield event


class RecordingSession(ProtocolSession):
    """Counts contacts; optionally finishes after ``stop_after`` events."""

    def __init__(self, stop_after=None):
        self.seen = []
        self._stop_after = stop_after

    def on_contact(self, event):
        self.seen.append(event)

    @property
    def done(self):
        return self._stop_after is not None and len(self.seen) >= self._stop_after

    def outcome(self):
        return DeliveryOutcome()


def _events(*times):
    return [ContactEvent(time=t, a=0, b=1) for t in times]


class TestSimulationEngine:
    def test_dispatches_all_events(self):
        engine = SimulationEngine(ScriptedEvents(_events(1, 2, 3)), horizon=10)
        session = engine.add_session(RecordingSession())
        engine.run()
        assert len(session.seen) == 3
        assert engine.events_processed == 3

    def test_horizon_cuts_stream(self):
        engine = SimulationEngine(ScriptedEvents(_events(1, 2, 30)), horizon=10)
        session = engine.add_session(RecordingSession())
        engine.run()
        assert len(session.seen) == 2

    def test_early_exit_when_all_done(self):
        engine = SimulationEngine(ScriptedEvents(_events(1, 2, 3, 4)), horizon=10)
        session = engine.add_session(RecordingSession(stop_after=2))
        engine.run()
        assert len(session.seen) == 2

    def test_done_sessions_skip_events_but_others_continue(self):
        engine = SimulationEngine(ScriptedEvents(_events(1, 2, 3)), horizon=10)
        finished = engine.add_session(RecordingSession(stop_after=1))
        ongoing = engine.add_session(RecordingSession())
        engine.run()
        assert len(finished.seen) == 1
        assert len(ongoing.seen) == 3

    def test_no_sessions_rejected(self):
        engine = SimulationEngine(ScriptedEvents([]), horizon=10)
        with pytest.raises(RuntimeError, match="no protocol sessions"):
            engine.run()

    def test_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            SimulationEngine(ScriptedEvents([]), horizon=0)

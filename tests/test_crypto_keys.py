"""Tests for key derivation and group keyrings."""

import pytest

from repro.crypto.keys import GroupKeyring, derive_key, generate_key

MASTER = b"test-master-secret"


class TestKeyGeneration:
    def test_generate_key_size(self):
        assert len(generate_key()) == 32

    def test_generate_keys_distinct(self):
        assert generate_key() != generate_key()

    def test_derive_deterministic(self):
        assert derive_key(MASTER, "group-1") == derive_key(MASTER, "group-1")

    def test_derive_labels_independent(self):
        assert derive_key(MASTER, "group-1") != derive_key(MASTER, "group-2")

    def test_derive_masters_independent(self):
        assert derive_key(b"a-secret", "g") != derive_key(b"b-secret", "g")

    def test_empty_master_rejected(self):
        with pytest.raises(ValueError, match="master"):
            derive_key(b"", "label")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            derive_key(MASTER, "")


class TestGroupKeyring:
    def test_for_groups(self):
        keyring = GroupKeyring.for_groups(MASTER, [0, 1, 2])
        assert len(keyring) == 3
        assert keyring.knows(1)
        assert not keyring.knows(9)

    def test_key_lookup(self):
        keyring = GroupKeyring.for_groups(MASTER, [5])
        assert keyring.key_for(5) == derive_key(MASTER, "group-5")

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            GroupKeyring().key_for(3)

    def test_add_rejects_wrong_size(self):
        with pytest.raises(ValueError, match="32 bytes"):
            GroupKeyring().add(0, b"short")

    def test_add_rejects_negative_group(self):
        with pytest.raises(ValueError, match="non-negative"):
            GroupKeyring().add(-1, generate_key())

    def test_add_idempotent_for_same_key(self):
        key = generate_key()
        keyring = GroupKeyring()
        keyring.add(0, key)
        keyring.add(0, key)
        assert len(keyring) == 1

    def test_add_conflicting_key_rejected(self):
        keyring = GroupKeyring()
        keyring.add(0, generate_key())
        with pytest.raises(ValueError, match="conflicting"):
            keyring.add(0, generate_key())

    def test_restricted_to(self):
        keyring = GroupKeyring.for_groups(MASTER, range(5))
        member_view = keyring.restricted_to([2])
        assert member_view.group_ids == (2,)
        assert member_view.key_for(2) == keyring.key_for(2)

    def test_contains(self):
        keyring = GroupKeyring.for_groups(MASTER, [4])
        assert 4 in keyring
        assert 5 not in keyring

    def test_group_ids_sorted(self):
        keyring = GroupKeyring.for_groups(MASTER, [3, 1, 2])
        assert keyring.group_ids == (1, 2, 3)

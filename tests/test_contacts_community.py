"""Tests for the community contact-graph generator."""

import numpy as np
import pytest

from repro.contacts.community import (
    CommunityConfig,
    CommunityGraph,
    community_contact_graph,
)

SMALL = CommunityConfig(
    communities=3,
    community_size=10,
    intra_rate=0.1,
    inter_rate=0.001,
    bridge_fraction=0.2,
    bridge_rate=0.02,
    rate_jitter=0.2,
)


class TestConfig:
    def test_n(self):
        assert SMALL.n == 30

    @pytest.mark.parametrize(
        "overrides",
        [
            {"communities": 0},
            {"intra_rate": 0.0},
            {"bridge_fraction": 1.5},
            {"rate_jitter": 1.0},
        ],
    )
    def test_invalid(self, overrides):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(SMALL, **overrides)


class TestGeneration:
    def test_structure_metadata(self):
        result = community_contact_graph(SMALL, rng=0)
        assert result.graph.n == 30
        assert len(result.community_of) == 30
        assert result.community_members(0) == tuple(range(10))
        # 20% bridges per community of 10 -> 2 each
        assert len(result.bridges) == 6

    def test_intra_rates_dominate_inter(self):
        result = community_contact_graph(SMALL, rng=1)
        graph = result.graph
        non_bridge = [v for v in range(30) if v not in result.bridges]
        same = [
            graph.rate(i, j)
            for i in non_bridge
            for j in non_bridge
            if i < j and result.community_of[i] == result.community_of[j]
        ]
        cross = [
            graph.rate(i, j)
            for i in non_bridge
            for j in non_bridge
            if i < j and result.community_of[i] != result.community_of[j]
        ]
        assert min(same) > max(cross)

    def test_bridges_meet_everyone_faster(self):
        result = community_contact_graph(SMALL, rng=2)
        graph = result.graph
        bridge = result.bridges[0]
        non_bridge_far = next(
            v
            for v in range(30)
            if v not in result.bridges
            and result.community_of[v] != result.community_of[bridge]
        )
        other_far = next(
            v
            for v in range(30)
            if v not in result.bridges
            and v != non_bridge_far
            and result.community_of[v]
            == result.community_of[non_bridge_far]
        )
        assert graph.rate(bridge, non_bridge_far) > graph.rate(
            other_far, non_bridge_far
        ) or result.community_of[other_far] == result.community_of[non_bridge_far]

    def test_no_bridges_when_fraction_zero(self):
        config = CommunityConfig(
            communities=2, community_size=5, bridge_fraction=0.0
        )
        result = community_contact_graph(config, rng=3)
        assert result.bridges == ()

    def test_reproducible(self):
        a = community_contact_graph(SMALL, rng=4)
        b = community_contact_graph(SMALL, rng=4)
        assert np.array_equal(a.graph.rates, b.graph.rates)
        assert a.bridges == b.bridges

    def test_feeds_onion_models(self):
        """Community graphs plug straight into the paper's pipeline."""
        from repro.analysis.delivery import delivery_rate
        from repro.core.onion_groups import OnionGroupDirectory

        result = community_contact_graph(SMALL, rng=5)
        directory = OnionGroupDirectory(30, 5, rng=5)
        route = directory.select_route(0, 29, 2, rng=5)
        p = delivery_rate(result.graph, 0, route.groups, 29, 300.0)
        assert 0.0 < p <= 1.0

"""Kernel vs columnar dispatch must be outcome-for-outcome identical.

The :class:`~repro.sim.kernel.BatchKernel` claims that for fault-free
single-copy sessions only two kinds of event change state — the first
meeting with a next-group member and the first event past the TTL — and
dispatches exactly those through the session's own scalar hook. These
tests check the claim end-to-end: the same seeded batch, run under
``consume="columnar"`` and ``consume="kernel"``, must produce
byte-identical ``DeliveryOutcome`` sequences across graph sizes, group
sizes, route lengths, and seeds; including mixed batches where faulted /
keyring sessions fall back to the object path (multi-copy sessions now
route to their own kernel — see
``tests/test_sim_multicopy_kernel_equivalence.py``).
"""

import numpy as np
import pytest

from repro.contacts.events import ColumnarEventSource, EventBlock
from repro.contacts.random_graph import random_contact_graph
from repro.core.multi_copy import MultiCopySession
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.route import OnionRoute
from repro.core.single_copy import SingleCopySession
from repro.adversary.dropping import DroppingRelays
from repro.faults.recovery import FaultPlan, RecoveryPolicy
from repro.experiments.runners import run_random_graph_batch
from repro.sim.engine import SimulationEngine
from repro.sim.kernel import BatchKernel
from repro.sim.message import Message
from repro.sim.metrics import status_counts


def outcome_fields(outcomes):
    """Every DeliveryOutcome field, fully materialised for == comparison."""
    return [
        (
            o.delivered,
            o.delivery_time,
            o.transmissions,
            o.expired_copies,
            o.lost_copies,
            o.created_at,
            o.status,
            tuple(tuple(p) for p in o.paths),
            tuple(o.transfers),
        )
        for o in outcomes
    ]


def batch_fields(pairs):
    return outcome_fields(outcome for _, outcome in pairs)


# ----------------------------------------------------------------------
# the parametrized sweep: 2 n × 2 g × 2 K × 3 seeds = 24 cases
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [20, 50])
@pytest.mark.parametrize("group_size", [1, 4])
@pytest.mark.parametrize("onion_routers", [1, 3])
@pytest.mark.parametrize("seed", [3, 11, 29])
def test_kernel_matches_columnar(n, group_size, onion_routers, seed):
    graph = random_contact_graph(
        n, (10.0, 120.0), rng=np.random.default_rng(seed)
    )
    runs = []
    counts = []
    for consume in ("columnar", "kernel"):
        pairs = run_random_graph_batch(
            graph,
            group_size,
            onion_routers,
            1,
            horizon=360.0,
            sessions=30,
            rng=np.random.default_rng(seed),
            consume=consume,
        )
        runs.append(batch_fields(pairs))
        counts.append(status_counts([outcome for _, outcome in pairs]))
    assert runs[0] == runs[1]
    assert counts[0] == counts[1]


def test_kernel_knob_matches_consume_spelling():
    graph = random_contact_graph(
        25, (10.0, 120.0), rng=np.random.default_rng(17)
    )
    spelled = run_random_graph_batch(
        graph, 3, 2, 1, horizon=240.0, sessions=20,
        rng=np.random.default_rng(17), consume="kernel",
    )
    knobbed = run_random_graph_batch(
        graph, 3, 2, 1, horizon=240.0, sessions=20,
        rng=np.random.default_rng(17), kernel=True,
    )
    assert batch_fields(spelled) == batch_fields(knobbed)


# ----------------------------------------------------------------------
# TTL expiry and late creation, on a hand-built window
# ----------------------------------------------------------------------


def scripted_block():
    """A tiny window where sessions can deliver, expire, or stall."""
    events = [
        (1.0, 0, 9),   # before any session exists
        (4.0, 0, 1),   # hop 1 for the early route
        (6.0, 1, 2),   # hop 2 → delivery for the early route
        (12.0, 0, 3),  # hop 1 for the late route
        (30.0, 5, 6),  # unrelated traffic past the short TTLs
        (31.0, 3, 4),  # too late: the late route has expired by now
    ]
    return EventBlock(
        times=np.array([t for t, _, _ in events]),
        a=np.array([a for _, a, _ in events]),
        b=np.array([b for _, _, b in events]),
    )


def expiry_sessions():
    """Deliver-in-time, expire-mid-route, and never-started sessions."""
    delivered = SingleCopySession(
        Message(source=0, destination=2, created_at=0.0, deadline=100.0),
        OnionRoute(source=0, destination=2, group_ids=(0,), groups=((1,),)),
    )
    expires = SingleCopySession(
        Message(source=0, destination=4, created_at=2.0, deadline=20.0),
        OnionRoute(source=0, destination=4, group_ids=(1,), groups=((3,),)),
    )
    stalled = SingleCopySession(
        Message(source=7, destination=8, created_at=0.0, deadline=1000.0),
        OnionRoute(source=7, destination=8, group_ids=(2,), groups=((5,),)),
    )
    return [delivered, expires, stalled]


def run_scripted(consume):
    engine = SimulationEngine(
        ColumnarEventSource(scripted_block()), horizon=500.0, consume=consume
    )
    sessions = expiry_sessions()
    for session in sessions:
        engine.add_session(session)
    engine.run()
    return [session.outcome() for session in sessions]


def test_ttl_expiry_and_late_creation_match_columnar():
    columnar = run_scripted("columnar")
    kernel = run_scripted("kernel")
    assert outcome_fields(columnar) == outcome_fields(kernel)
    assert [o.status for o in kernel] == ["delivered", "expired", "pending"]
    # The expiring session died at the first event past its deadline
    # (t=30), not at its literal deadline — same semantics as the loops.
    assert kernel[1].expired_copies == 1


# ----------------------------------------------------------------------
# mixed batches: ineligible sessions fall back and still match
# ----------------------------------------------------------------------


def mixed_sessions(n, seed):
    """Eligible, multi-copy, keyring, faulted, and recovery sessions."""
    rng = np.random.default_rng(seed)
    directory = OnionGroupDirectory(n, 3, rng=rng)
    keyring = directory.build_keyring(b"master")
    plan = FaultPlan(
        relays=DroppingRelays(
            frozenset(range(5, 12)), 0.6, rng=np.random.default_rng(99)
        )
    )
    sessions = []
    for index in range(12):
        source, destination = rng.choice(n, size=2, replace=False)
        route = directory.select_route(
            int(source), int(destination), 2, rng=rng
        )
        message = Message(
            source=int(source),
            destination=int(destination),
            created_at=0.0,
            deadline=360.0,
        )
        kind = index % 4
        if kind == 0:
            sessions.append(SingleCopySession(message, route))
        elif kind == 1:
            sessions.append(MultiCopySession(message, route, copies=3))
        elif kind == 2:
            sessions.append(SingleCopySession(message, route, keyring=keyring))
        else:
            sessions.append(
                SingleCopySession(
                    message,
                    route,
                    faults=plan,
                    recovery=RecoveryPolicy(custody_timeout=30.0, max_retries=2),
                )
            )
    return sessions


def test_mixed_batch_fallback_matches_columnar():
    n = 30
    graph = random_contact_graph(n, (10.0, 120.0), rng=np.random.default_rng(7))
    from repro.contacts.events import ExponentialContactProcess

    block = ExponentialContactProcess(
        graph, rng=np.random.default_rng(21)
    ).events_until_columnar(360.0)
    runs = []
    for consume in ("columnar", "kernel"):
        engine = SimulationEngine(
            ColumnarEventSource(block), horizon=360.0, consume=consume
        )
        sessions = mixed_sessions(n, seed=13)
        for session in sessions:
            engine.add_session(session)
        engine.run()
        runs.append(outcome_fields(s.outcome() for s in sessions))
    assert runs[0] == runs[1]


def test_iterator_source_degrades_to_object_loop():
    # A source without events_until_columnar cannot feed the kernel; the
    # engine must silently run the legacy loop with identical outcomes.
    class IteratorOnly:
        def __init__(self, block):
            self._inner = ColumnarEventSource(block)

        def events_until(self, horizon):
            return self._inner.events_until(horizon)

    block = scripted_block()
    engine = SimulationEngine(IteratorOnly(block), horizon=500.0, consume="kernel")
    sessions = expiry_sessions()
    for session in sessions:
        engine.add_session(session)
    engine.run()
    assert outcome_fields(s.outcome() for s in sessions) == outcome_fields(
        run_scripted("columnar")
    )


# ----------------------------------------------------------------------
# eligibility and engine plumbing
# ----------------------------------------------------------------------


class TestSupports:
    def route(self):
        return OnionRoute(
            source=0, destination=3, group_ids=(0,), groups=((1, 2),)
        )

    def message(self):
        return Message(source=0, destination=3, created_at=0.0, deadline=10.0)

    def test_plain_single_copy_supported(self):
        assert BatchKernel.supports(SingleCopySession(self.message(), self.route()))

    def test_multi_copy_rejected(self):
        session = MultiCopySession(self.message(), self.route(), copies=2)
        assert not BatchKernel.supports(session)

    def test_faulted_rejected(self):
        plan = FaultPlan(relays=DroppingRelays(frozenset({1}), 1.0))
        session = SingleCopySession(self.message(), self.route(), faults=plan)
        assert not BatchKernel.supports(session)

    def test_recovery_rejected(self):
        session = SingleCopySession(
            self.message(),
            self.route(),
            recovery=RecoveryPolicy(custody_timeout=5.0, max_retries=1),
        )
        assert not BatchKernel.supports(session)

    def test_subclass_rejected(self):
        class Tweaked(SingleCopySession):
            pass

        assert not BatchKernel.supports(Tweaked(self.message(), self.route()))

    def test_constructor_rejects_ineligible(self):
        session = MultiCopySession(self.message(), self.route(), copies=2)
        with pytest.raises(ValueError, match="SingleCopySession"):
            BatchKernel([session])

    def test_dispatch_counter(self):
        block = scripted_block()
        kernel = BatchKernel(expiry_sessions())
        dispatched = kernel.run(block)
        # Delivery = forwards at t=4 and t=6; the expiring session forwards
        # at t=12 then expires at t=30; the stalled session never fires.
        assert dispatched == 4
        assert kernel.dispatches == 4


class TestEnginePlumbing:
    def test_dispatch_kernel_alias(self):
        engine = SimulationEngine(
            ColumnarEventSource(scripted_block()),
            horizon=10.0,
            dispatch="kernel",
        )
        assert engine.dispatch == "indexed"
        assert engine.consume == "kernel"

    def test_consume_kernel_accepted(self):
        engine = SimulationEngine(
            ColumnarEventSource(scripted_block()), horizon=10.0, consume="kernel"
        )
        assert engine.consume == "kernel"

    def test_unknown_consume_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            SimulationEngine(
                ColumnarEventSource(scripted_block()),
                horizon=10.0,
                consume="vector",
            )

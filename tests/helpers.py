"""Shared test helpers: scripted event sources."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.contacts.events import ContactEvent


class ScriptedEvents:
    """A deterministic contact-event source built from (time, a, b) tuples."""

    def __init__(self, events: Iterable[Tuple[float, int, int]]):
        self._events: List[ContactEvent] = sorted(
            (ContactEvent(time=t, a=a, b=b) for t, a, b in events),
            key=lambda e: e.time,
        )
        self._cursor = 0

    def events_until(self, horizon: float):
        while self._cursor < len(self._events):
            event = self._events[self._cursor]
            if event.time > horizon:
                return
            self._cursor += 1
            yield event


def feed(session, events: Sequence[Tuple[float, int, int]]) -> None:
    """Push scripted contacts straight into a session, in time order."""
    for t, a, b in sorted(events):
        session.on_contact(ContactEvent(time=t, a=a, b=b))

"""Fast, deterministic chaos tests for the supervised execution layer.

Each scenario injects one failure class into a real multi-process pool
(``max_processes`` forces subprocesses even on a 1-CPU host) and asserts
the supervised dispatcher recovers with results identical to a clean
inline run, with the incident classified on the
:class:`~repro.utils.resilience.ExecutionReport`.

Failure injection uses one-shot "fuse" files in ``tmp_path``: the first
execution that claims the fuse (atomic ``unlink``) misbehaves, the retry
runs clean. Worker functions live at module level so the ``fork`` start
method can pickle them by reference.

The heavyweight end-to-end version of these scenarios (full sweep,
checkpoint corruption mid-run, byte-identical aggregates) lives in
``experiments/chaos_harness.py`` and runs in CI's chaos-smoke job.
"""

import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.parallel import (
    WorkerPool,
    parallel_map,
    workers_metadata,
)
from repro.utils.resilience import (
    CHUNK_ERROR,
    CHUNK_TIMEOUT,
    WORKER_CRASH,
    ExecutionReport,
    RetryPolicy,
)

def _no_sleep_policy(**overrides):
    defaults = dict(max_retries=2, backoff=0.0, jitter=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def _draw(seed: int, n: int):
    """Deterministic chunk payload: exact float equality proves seed-exact retry."""
    return np.random.default_rng(seed).random(n).tolist()


def _claim(fuse: Path) -> bool:
    """Atomically claim a one-shot fuse file; True for the single winner."""
    try:
        fuse.unlink()
    except FileNotFoundError:
        return False
    return True


def _draw_fail_once(seed: int, n: int, fuse_dir: str):
    if _claim(Path(fuse_dir) / f"fail-{seed}.fuse"):
        raise RuntimeError("injected chunk failure")
    return _draw(seed, n)


def _draw_kill_once(seed: int, n: int, fuse_dir: str):
    if _claim(Path(fuse_dir) / "kill.fuse"):
        os.kill(os.getpid(), signal.SIGKILL)
    return _draw(seed, n)


def _draw_hang_once(seed: int, n: int, fuse_dir: str):
    if _claim(Path(fuse_dir) / "hang.fuse"):
        time.sleep(60.0)  # pragma: no cover - the pool is killed first
    return _draw(seed, n)


def _draw_fail_on_pool(seed: int, n: int, parent_pid: int):
    """Fails in every worker process, succeeds inline in the supervisor."""
    if os.getpid() != parent_pid:
        raise RuntimeError("injected pool-only failure")
    return _draw(seed, n)


def _interrupt_or_sleep(seed: int):
    """Chunk 0 interrupts (after letting chunk 1 start); chunk 1 naps 30 s."""
    if seed == 0:
        time.sleep(0.2)
        raise KeyboardInterrupt
    time.sleep(30.0)  # pragma: no cover - terminated by the interrupt path
    return seed


TASKS = [(seed, 5) for seed in range(6)]
CLEAN = [_draw(seed, n) for seed, n in TASKS]


class TestSupervisedRetry:
    def test_chunk_error_retried_seed_exact(self, tmp_path):
        (tmp_path / "fail-2.fuse").write_text("armed")
        report = ExecutionReport()
        with WorkerPool(
            4, max_processes=2, policy=_no_sleep_policy(), report=report
        ) as pool:
            tasks = [(seed, n, str(tmp_path)) for seed, n in TASKS]
            results = parallel_map(_draw_fail_once, tasks, pool)
        assert results == CLEAN
        assert report.counts() == {CHUNK_ERROR: 1}
        event = report.events[0]
        assert event.resolution == "retried"
        assert "injected chunk failure" in event.detail
        assert report.pool_restarts == 0  # an exception never breaks the pool

    def test_worker_crash_restarts_pool_and_retries(self, tmp_path):
        (tmp_path / "kill.fuse").write_text("armed")
        report = ExecutionReport()
        with WorkerPool(
            4, max_processes=2, policy=_no_sleep_policy(), report=report
        ) as pool:
            tasks = [(seed, n, str(tmp_path)) for seed, n in TASKS]
            results = parallel_map(_draw_kill_once, tasks, pool)
        assert results == CLEAN
        assert report.counts().get(WORKER_CRASH, 0) >= 1
        assert report.pool_restarts >= 1
        assert not report.degraded_to_serial

    def test_hung_chunk_times_out_and_retries(self, tmp_path):
        (tmp_path / "hang.fuse").write_text("armed")
        report = ExecutionReport()
        policy = _no_sleep_policy(timeout=1.0)
        started = time.monotonic()
        with WorkerPool(4, max_processes=2, policy=policy, report=report) as pool:
            tasks = [(seed, n, str(tmp_path)) for seed, n in TASKS]
            results = parallel_map(_draw_hang_once, tasks, pool)
        elapsed = time.monotonic() - started
        assert results == CLEAN
        assert report.counts().get(CHUNK_TIMEOUT, 0) >= 1
        assert report.pool_restarts >= 1
        assert elapsed < 30.0  # nowhere near the 60 s hang

    def test_persistent_pool_failure_degrades_to_inline(self, tmp_path):
        report = ExecutionReport()
        policy = _no_sleep_policy(max_retries=1)
        with WorkerPool(4, max_processes=2, policy=policy, report=report) as pool:
            tasks = [(seed, n, os.getpid()) for seed, n in TASKS]
            results = parallel_map(_draw_fail_on_pool, tasks, pool)
        assert results == CLEAN
        # Every chunk burned its pooled attempts before succeeding inline.
        assert report.counts()[CHUNK_ERROR] == len(TASKS) * (policy.max_retries + 1)
        resolutions = {e.resolution for e in report.events}
        assert resolutions == {"retried", "inline"}

    def test_pool_restart_budget_degrades_sweep_to_serial(self, tmp_path):
        (tmp_path / "kill.fuse").write_text("armed")
        report = ExecutionReport()
        policy = _no_sleep_policy(max_pool_restarts=0)
        with WorkerPool(4, max_processes=2, policy=policy, report=report) as pool:
            tasks = [(seed, n, str(tmp_path)) for seed, n in TASKS]
            results = parallel_map(_draw_kill_once, tasks, pool)
        assert results == CLEAN
        assert report.degraded_to_serial
        assert report.pool_restarts == 1

    def test_exhausted_inline_retries_propagate(self, tmp_path):
        report = ExecutionReport()
        policy = _no_sleep_policy(max_retries=1)
        # parent_pid=0 never matches: the chunk fails inline too.
        tasks = [(seed, n, 0) for seed, n in TASKS[:2]]
        with WorkerPool(4, max_processes=1, policy=policy, report=report) as pool:
            with pytest.raises(RuntimeError, match="injected pool-only failure"):
                parallel_map(_draw_fail_on_pool, tasks, pool)
        assert any(e.resolution == "failed" for e in report.events)

    def test_supervised_int_workers_runs_inline_on_one_cpu(self, tmp_path):
        (tmp_path / "fail-1.fuse").write_text("armed")
        report = ExecutionReport()
        tasks = [(seed, n, str(tmp_path)) for seed, n in TASKS]
        results = parallel_map(
            _draw_fail_once, tasks, 4, policy=_no_sleep_policy(), report=report
        )
        assert results == CLEAN
        assert report.counts() == {CHUNK_ERROR: 1}


class TestKeyboardInterruptShutdown:
    def test_interrupt_terminates_pool_promptly(self):
        pool = WorkerPool(2, max_processes=2)
        started = time.monotonic()
        try:
            with pytest.raises(KeyboardInterrupt):
                # Chunk 0 interrupts while chunk 1 naps for 30 s; shutdown
                # must kill the straggler instead of joining it.
                parallel_map(_interrupt_or_sleep, [(0,), (1,)], pool)
        finally:
            elapsed = time.monotonic() - started
            pool.close()
        assert elapsed < 20.0
        assert pool._executor is None  # terminate() tore the executor down

    def test_terminated_pool_is_reusable(self):
        with WorkerPool(2, max_processes=2) as pool:
            assert parallel_map(_draw, TASKS[:2], pool) == CLEAN[:2]
            pool.terminate()
            assert pool._executor is None
            assert parallel_map(_draw, TASKS[:2], pool) == CLEAN[:2]


class TestWorkersMetadata:
    def test_int_workers(self):
        meta = workers_metadata(3)
        assert meta["workers_requested"] == 3
        assert meta["workers_effective"] == min(3, os.cpu_count() or 1)
        assert "resilience" not in meta

    def test_pool_reports_effective_processes(self):
        with WorkerPool(4, max_processes=2) as pool:
            meta = workers_metadata(pool)
        assert meta == {"workers_requested": 4, "workers_effective": 2}

    def test_supervised_pool_with_incidents_embeds_summary(self):
        report = ExecutionReport()
        report.record(WORKER_CRASH, "chunk 0", attempt=1, resolution="retried")
        with WorkerPool(4, max_processes=2, policy=RetryPolicy(), report=report) as pool:
            meta = workers_metadata(pool)
        assert meta["resilience"]["counts"] == {WORKER_CRASH: 1}
        assert meta["resilience"]["retries"] == 1

    def test_quiet_supervised_pool_omits_summary(self):
        with WorkerPool(4, max_processes=2, policy=RetryPolicy()) as pool:
            meta = workers_metadata(pool)
        assert "resilience" not in meta

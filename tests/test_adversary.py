"""Tests for the adversary model: compromise, tracing, anonymity observation."""

import numpy as np
import pytest

from repro.adversary.compromise import (
    COMPROMISE_MODELS,
    BernoulliCompromise,
    CompromiseModel,
    StakeWeightedCompromise,
    TargetedCompromise,
    make_compromise_model,
)
from repro.adversary.observer import (
    observed_exposed_hops,
    observed_path_anonymity,
)
from repro.adversary.tracer import PathTracer
from repro.analysis.anonymity import path_anonymity_exact


class TestCompromiseModel:
    def test_fixed_count(self):
        model = CompromiseModel(100, 0.2)
        compromised = model.sample_fixed_count(rng=0)
        assert len(compromised) == 20
        assert all(0 <= v < 100 for v in compromised)

    def test_zero_rate(self):
        assert CompromiseModel(50, 0.0).sample_fixed_count(rng=0) == set()

    def test_protected_nodes_never_compromised(self):
        model = CompromiseModel(20, 0.5, protected=[0, 19])
        for seed in range(20):
            compromised = model.sample_fixed_count(rng=seed)
            assert 0 not in compromised
            assert 19 not in compromised

    def test_protected_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            CompromiseModel(10, 0.1, protected=[10])

    def test_bernoulli_rate(self):
        model = CompromiseModel(2000, 0.3)
        compromised = model.sample_bernoulli(rng=0)
        assert len(compromised) == pytest.approx(600, rel=0.15)

    def test_expected_count(self):
        assert CompromiseModel(100, 0.25).expected_count == 25.0

    def test_rate_one_rejected(self):
        with pytest.raises(ValueError):
            CompromiseModel(10, 1.0)

    def test_samples_vary_with_seed(self):
        model = CompromiseModel(100, 0.1)
        assert model.sample_fixed_count(rng=1) != model.sample_fixed_count(rng=2)


class TestCompromiseStrategies:
    """The strategy family built on the shared key-column contract."""

    def test_uniform_mask_count_is_exact(self):
        model = CompromiseModel(40, 0.25)
        keys = np.random.default_rng(0).random((16, 40))
        mask = model.mask_from_keys(keys)
        assert mask.shape == (16, 40)
        assert np.all(mask.sum(axis=1) == 10)

    def test_uniform_sample_matches_mask_derivation(self):
        model = CompromiseModel(40, 0.25)
        assert model.sample(rng=7) == model.sample(rng=7)
        assert len(model.sample(rng=7)) == 10

    def test_masks_nest_across_rates(self):
        keys = np.random.default_rng(1).random((32, 50))
        for model in (CompromiseModel(50, 0.1), BernoulliCompromise(50, 0.1)):
            low = model.mask_from_keys(keys, rate=0.1)
            high = model.mask_from_keys(keys, rate=0.4)
            assert np.all(low <= high)

    def test_bernoulli_mask_is_key_threshold(self):
        model = BernoulliCompromise(30, 0.3)
        keys = np.random.default_rng(2).random((8, 30))
        assert np.array_equal(model.mask_from_keys(keys), keys < 0.3)

    def test_targeted_hits_top_weights_first(self):
        weights = list(range(20))  # node 19 best connected
        model = TargetedCompromise(20, 0.2, weights)
        keys = np.random.default_rng(3).random((5, 20))
        mask = model.mask_from_keys(keys)
        # distinct weights: deterministic, the top-4 nodes in every trial
        assert np.all(mask[:, [19, 18, 17, 16]])
        assert mask.sum() == 5 * 4

    def test_targeted_breaks_ties_with_keys(self):
        model = TargetedCompromise(10, 0.2, [1.0] * 10)
        keys = np.random.default_rng(4).random((64, 10))
        mask = model.mask_from_keys(keys)
        assert np.all(mask.sum(axis=1) == 2)
        # all-equal weights degenerate to the uniform model
        uniform = CompromiseModel(10, 0.2).mask_from_keys(keys)
        assert np.array_equal(mask, uniform)

    def test_stake_weighting_prefers_large_stakes(self):
        stakes = [1.0] * 19 + [1000.0]
        model = StakeWeightedCompromise(20, 0.1, stakes)
        keys = np.random.default_rng(5).random((200, 20))
        mask = model.mask_from_keys(keys)
        assert np.all(mask.sum(axis=1) == 2)
        assert mask[:, 19].mean() > 0.9

    def test_protected_nodes_never_masked(self):
        keys = np.random.default_rng(6).random((32, 12))
        models = [
            CompromiseModel(12, 0.5, protected=[0, 11]),
            BernoulliCompromise(12, 0.5, protected=[0, 11]),
            TargetedCompromise(12, 0.5, list(range(12)), protected=[0, 11]),
            StakeWeightedCompromise(12, 0.5, [1.0] * 12, protected=[0, 11]),
        ]
        for model in models:
            mask = model.mask_from_keys(keys)
            assert not mask[:, 0].any(), model.name
            assert not mask[:, 11].any(), model.name

    def test_bad_key_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            CompromiseModel(10, 0.1).mask_from_keys(np.zeros((4, 9)))

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="shape"):
            TargetedCompromise(10, 0.1, [1.0] * 9)
        with pytest.raises(ValueError, match="finite"):
            TargetedCompromise(10, 0.1, [np.inf] * 10)
        with pytest.raises(ValueError, match="positive"):
            StakeWeightedCompromise(10, 0.1, [0.0] * 10)

    def test_registry_and_factory(self):
        assert set(COMPROMISE_MODELS) == {
            "uniform", "bernoulli", "targeted", "stake"
        }
        model = make_compromise_model("targeted", 10, 0.2, weights=range(10))
        assert isinstance(model, TargetedCompromise)
        with pytest.raises(ValueError, match="unknown compromise model"):
            make_compromise_model("nonsense", 10, 0.2)
        with pytest.raises(ValueError, match="requires weights"):
            make_compromise_model("stake", 10, 0.2)
        with pytest.raises(ValueError, match="does not take weights"):
            make_compromise_model("uniform", 10, 0.2, weights=range(10))


class TestPathTracer:
    def test_bits_and_rate(self):
        tracer = PathTracer({1, 2, 4})
        # path senders v1 v2 v3 v4 (hops 1-4): bits 1101
        assert tracer.bits([1, 2, 3, 4]) == [1, 1, 0, 1]
        assert tracer.traceable_rate([1, 2, 3, 4]) == pytest.approx(0.3125)

    def test_disclosed_links(self):
        tracer = PathTracer({1, 3})
        assert tracer.disclosed_links([1, 2, 3, 4]) == 2

    def test_no_compromise_zero(self):
        tracer = PathTracer(set())
        assert tracer.traceable_rate([1, 2, 3]) == 0.0

    def test_mean_over_paths(self):
        tracer = PathTracer({1})
        mean = tracer.mean_traceable_rate([[1, 2], [3, 4]])
        assert mean == pytest.approx((0.25 + 0.0) / 2)

    def test_mean_requires_paths(self):
        with pytest.raises(ValueError):
            PathTracer(set()).mean_traceable_rate([])

    def test_mean_empty_error_names_the_context(self):
        with pytest.raises(ValueError, match="figure 6 sessions"):
            PathTracer(set()).mean_traceable_rate([], context="figure 6 sessions")

    def test_mean_streams_generators(self):
        tracer = PathTracer({1})
        mean = tracer.mean_traceable_rate(p for p in ([1, 2], [3, 4]))
        assert mean == pytest.approx((0.25 + 0.0) / 2)

    def test_compromised_is_frozen_copy(self):
        source = {1, 2}
        tracer = PathTracer(source)
        source.add(3)
        assert 3 not in tracer.compromised


class TestObserver:
    def test_single_path_count(self):
        exposed = observed_exposed_hops([[0, 5, 9]], {5}, eta=3)
        assert exposed == 1

    def test_union_over_copies(self):
        paths = [[0, 5, 9], [0, 6, 9]]
        # position 1 exposed via copy 1 (5), position 2 exposed via both (9)
        assert observed_exposed_hops(paths, {5, 9}, eta=3) == 2

    def test_position_counted_once_across_copies(self):
        paths = [[0, 5, 9], [0, 6, 9]]
        assert observed_exposed_hops(paths, {5, 6}, eta=3) == 1

    def test_short_paths_contribute_prefix(self):
        assert observed_exposed_hops([[0, 5]], {5}, eta=4) == 1

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            observed_exposed_hops([], {1}, eta=3)

    def test_anonymity_matches_exact_formula(self):
        paths = [[0, 5, 9]]
        value = observed_path_anonymity(paths, {5}, n=50, eta=3, group_size=5)
        assert value == pytest.approx(
            path_anonymity_exact(50, 3, 5, 1.0)
        )

    def test_anonymity_full_when_untouched(self):
        value = observed_path_anonymity([[0, 5, 9]], set(), n=50, eta=3, group_size=5)
        assert value == pytest.approx(1.0)

    def test_more_copies_cannot_raise_anonymity(self):
        compromised = {5, 6}
        one = observed_path_anonymity([[0, 5, 9]], compromised, 50, 3, 5)
        two = observed_path_anonymity(
            [[0, 5, 9], [0, 6, 9]], compromised, 50, 3, 5
        )
        assert two <= one

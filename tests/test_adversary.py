"""Tests for the adversary model: compromise, tracing, anonymity observation."""

import numpy as np
import pytest

from repro.adversary.compromise import CompromiseModel
from repro.adversary.observer import (
    observed_exposed_hops,
    observed_path_anonymity,
)
from repro.adversary.tracer import PathTracer
from repro.analysis.anonymity import path_anonymity_exact


class TestCompromiseModel:
    def test_fixed_count(self):
        model = CompromiseModel(100, 0.2)
        compromised = model.sample_fixed_count(rng=0)
        assert len(compromised) == 20
        assert all(0 <= v < 100 for v in compromised)

    def test_zero_rate(self):
        assert CompromiseModel(50, 0.0).sample_fixed_count(rng=0) == set()

    def test_protected_nodes_never_compromised(self):
        model = CompromiseModel(20, 0.5, protected=[0, 19])
        for seed in range(20):
            compromised = model.sample_fixed_count(rng=seed)
            assert 0 not in compromised
            assert 19 not in compromised

    def test_protected_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            CompromiseModel(10, 0.1, protected=[10])

    def test_bernoulli_rate(self):
        model = CompromiseModel(2000, 0.3)
        compromised = model.sample_bernoulli(rng=0)
        assert len(compromised) == pytest.approx(600, rel=0.15)

    def test_expected_count(self):
        assert CompromiseModel(100, 0.25).expected_count == 25.0

    def test_rate_one_rejected(self):
        with pytest.raises(ValueError):
            CompromiseModel(10, 1.0)

    def test_samples_vary_with_seed(self):
        model = CompromiseModel(100, 0.1)
        assert model.sample_fixed_count(rng=1) != model.sample_fixed_count(rng=2)


class TestPathTracer:
    def test_bits_and_rate(self):
        tracer = PathTracer({1, 2, 4})
        # path senders v1 v2 v3 v4 (hops 1-4): bits 1101
        assert tracer.bits([1, 2, 3, 4]) == [1, 1, 0, 1]
        assert tracer.traceable_rate([1, 2, 3, 4]) == pytest.approx(0.3125)

    def test_disclosed_links(self):
        tracer = PathTracer({1, 3})
        assert tracer.disclosed_links([1, 2, 3, 4]) == 2

    def test_no_compromise_zero(self):
        tracer = PathTracer(set())
        assert tracer.traceable_rate([1, 2, 3]) == 0.0

    def test_mean_over_paths(self):
        tracer = PathTracer({1})
        mean = tracer.mean_traceable_rate([[1, 2], [3, 4]])
        assert mean == pytest.approx((0.25 + 0.0) / 2)

    def test_mean_requires_paths(self):
        with pytest.raises(ValueError):
            PathTracer(set()).mean_traceable_rate([])

    def test_compromised_is_frozen_copy(self):
        source = {1, 2}
        tracer = PathTracer(source)
        source.add(3)
        assert 3 not in tracer.compromised


class TestObserver:
    def test_single_path_count(self):
        exposed = observed_exposed_hops([[0, 5, 9]], {5}, eta=3)
        assert exposed == 1

    def test_union_over_copies(self):
        paths = [[0, 5, 9], [0, 6, 9]]
        # position 1 exposed via copy 1 (5), position 2 exposed via both (9)
        assert observed_exposed_hops(paths, {5, 9}, eta=3) == 2

    def test_position_counted_once_across_copies(self):
        paths = [[0, 5, 9], [0, 6, 9]]
        assert observed_exposed_hops(paths, {5, 6}, eta=3) == 1

    def test_short_paths_contribute_prefix(self):
        assert observed_exposed_hops([[0, 5]], {5}, eta=4) == 1

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            observed_exposed_hops([], {1}, eta=3)

    def test_anonymity_matches_exact_formula(self):
        paths = [[0, 5, 9]]
        value = observed_path_anonymity(paths, {5}, n=50, eta=3, group_size=5)
        assert value == pytest.approx(
            path_anonymity_exact(50, 3, 5, 1.0)
        )

    def test_anonymity_full_when_untouched(self):
        value = observed_path_anonymity([[0, 5, 9]], set(), n=50, eta=3, group_size=5)
        assert value == pytest.approx(1.0)

    def test_more_copies_cannot_raise_anonymity(self):
        compromised = {5, 6}
        one = observed_path_anonymity([[0, 5, 9]], compromised, 50, 3, 5)
        two = observed_path_anonymity(
            [[0, 5, 9], [0, 6, 9]], compromised, 50, 3, 5
        )
        assert two <= one

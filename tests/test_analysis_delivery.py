"""Tests for the delivery-rate models (paper Eq. 4–7)."""

import math

import numpy as np
import pytest

from repro.analysis.delivery import (
    delivery_rate,
    delivery_rate_from_rates,
    delivery_rate_multicopy,
    expected_path_delay,
    onion_path_rates,
)
from repro.contacts.graph import ContactGraph


@pytest.fixture
def graph():
    return ContactGraph.complete(20, 0.01)


GROUPS = [(5, 6, 7, 8, 9), (10, 11, 12, 13, 14)]


class TestOnionPathRates:
    def test_equation_4_on_uniform_graph(self, graph):
        rates = onion_path_rates(graph, 0, GROUPS, 19)
        # hop 1: sum over 5 members; hop 2: (1/5)·25 pairs; hop 3: sum over 5.
        assert rates == pytest.approx([0.05, 0.05, 0.05])

    def test_hop_count_is_k_plus_one(self, graph):
        rates = onion_path_rates(graph, 0, GROUPS, 19)
        assert len(rates) == len(GROUPS) + 1

    def test_first_hop_sums_source_rates(self):
        rates_matrix = np.zeros((6, 6))
        # source 0 only meets members 1 (rate .1) and 2 (rate .3)
        rates_matrix[0, 1] = rates_matrix[1, 0] = 0.1
        rates_matrix[0, 2] = rates_matrix[2, 0] = 0.3
        rates_matrix[1, 5] = rates_matrix[5, 1] = 0.2
        rates_matrix[2, 5] = rates_matrix[5, 2] = 0.2
        graph = ContactGraph(rates_matrix)
        rates = onion_path_rates(graph, 0, [(1, 2)], 5)
        assert rates[0] == pytest.approx(0.4)
        assert rates[1] == pytest.approx(0.4)

    def test_middle_hop_averages_over_senders(self):
        matrix = np.zeros((5, 5))
        matrix[0, 1] = matrix[1, 0] = 0.5
        matrix[0, 2] = matrix[2, 0] = 0.5
        # group (1,2) -> group (3,): λ_{1,3}=0.2, λ_{2,3}=0.4
        matrix[1, 3] = matrix[3, 1] = 0.2
        matrix[2, 3] = matrix[3, 2] = 0.4
        matrix[3, 4] = matrix[4, 3] = 0.1
        graph = ContactGraph(matrix)
        rates = onion_path_rates(graph, 0, [(1, 2), (3,)], 4)
        assert rates[1] == pytest.approx((0.2 + 0.4) / 2)

    def test_zero_rate_hop_raises(self):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = matrix[1, 0] = 0.1  # source reaches group
        # group member 1 never meets destination 3
        graph = ContactGraph(matrix)
        with pytest.raises(ValueError, match="zero contact rate"):
            onion_path_rates(graph, 0, [(1,)], 3)

    def test_same_endpoints_rejected(self, graph):
        with pytest.raises(ValueError, match="differ"):
            onion_path_rates(graph, 0, GROUPS, 0)

    def test_empty_route_rejected(self, graph):
        with pytest.raises(ValueError, match="at least one"):
            onion_path_rates(graph, 0, [], 19)


class TestDeliveryRate:
    def test_monotone_in_deadline(self, graph):
        p1 = delivery_rate(graph, 0, GROUPS, 19, 60.0)
        p2 = delivery_rate(graph, 0, GROUPS, 19, 600.0)
        assert p1 < p2 <= 1.0

    def test_zero_deadline(self, graph):
        assert delivery_rate(graph, 0, GROUPS, 19, 0.0) == 0.0

    def test_known_erlang_value(self, graph):
        """Uniform rates make the path Erlang(3, 0.05)."""
        from scipy.stats import erlang

        p = delivery_rate(graph, 0, GROUPS, 19, 100.0)
        assert p == pytest.approx(erlang.cdf(100.0, a=3, scale=20.0), abs=1e-9)

    def test_larger_groups_deliver_faster(self):
        graph = ContactGraph.complete(30, 0.01)
        small = delivery_rate(graph, 0, [(1, 2)], 29, 120.0)
        large = delivery_rate(graph, 0, [(1, 2, 3, 4, 5, 6)], 29, 120.0)
        assert large > small

    def test_more_onions_deliver_slower(self):
        graph = ContactGraph.complete(30, 0.01)
        short = delivery_rate(graph, 0, [(1, 2, 3)], 29, 120.0)
        long = delivery_rate(graph, 0, [(1, 2, 3), (4, 5, 6), (7, 8, 9)], 29, 120.0)
        assert long < short


class TestMulticopy:
    def test_reduces_to_single_copy_at_one(self, graph):
        single = delivery_rate(graph, 0, GROUPS, 19, 120.0)
        multi = delivery_rate_multicopy(graph, 0, GROUPS, 19, 120.0, copies=1)
        assert multi == pytest.approx(single)

    def test_monotone_in_copies(self, graph):
        values = [
            delivery_rate_multicopy(graph, 0, GROUPS, 19, 120.0, copies=L)
            for L in (1, 2, 3, 5)
        ]
        assert values == sorted(values)

    def test_equation_7_rate_scaling(self, graph):
        """L copies is exactly the single-copy model with rates × L."""
        boosted = delivery_rate_from_rates([0.15, 0.15, 0.15], 120.0)
        multi = delivery_rate_multicopy(graph, 0, GROUPS, 19, 120.0, copies=3)
        assert multi == pytest.approx(boosted)

    def test_invalid_copies(self, graph):
        with pytest.raises(ValueError):
            delivery_rate_multicopy(graph, 0, GROUPS, 19, 120.0, copies=0)


class TestExpectedPathDelay:
    def test_uniform_case(self, graph):
        assert expected_path_delay(graph, 0, GROUPS, 19) == pytest.approx(60.0)

    def test_copies_divide_delay(self, graph):
        single = expected_path_delay(graph, 0, GROUPS, 19, copies=1)
        triple = expected_path_delay(graph, 0, GROUPS, 19, copies=3)
        assert triple == pytest.approx(single / 3)

"""Sweep fusion: grid points batched into one engine pass.

``run_fused_graph_sweep`` / ``run_fused_trace_sweep`` register every
grid point's sessions in one engine over one shared contact window, so
one struct-of-arrays kernel invocation per kernel class advances the
whole grid. The contracts tested here:

* a single-variant fused sweep is byte-identical to the plain batch
  runner on the same seed (draw-order preservation);
* kernel and columnar consumption of the same fused sweep agree
  outcome-for-outcome, including mixed single-/multi-copy grids;
* the parallel wrapper merges chunk results per variant, and the
  figure runners actually take the kernel path by default (observable
  via the engine's dispatch-mode counters).
"""

import numpy as np
import pytest

from repro.contacts.random_graph import random_contact_graph
from repro.contacts.synthetic import cambridge_like_trace
from repro.core.multi_copy import SprayPolicy
from repro.experiments import runners as runners_module
from repro.experiments.parallel import run_parallel_fused_sweep
from repro.experiments.runners import (
    SweepVariant,
    run_fused_graph_sweep,
    run_fused_trace_sweep,
    run_random_graph_batch,
    run_trace_batch,
)
from repro.sim.engine import SimulationEngine

from tests.test_sim_kernel_equivalence import batch_fields


GRID = [
    SweepVariant(label="L=1", group_size=4, onion_routers=2, copies=1),
    SweepVariant(label="L=3", group_size=4, onion_routers=2, copies=3),
    SweepVariant(
        label="L=4/binary",
        group_size=4,
        onion_routers=2,
        copies=4,
        spray_policy=SprayPolicy.BINARY,
    ),
]


def small_graph(seed=8):
    return random_contact_graph(30, (10.0, 90.0), rng=np.random.default_rng(seed))


def test_single_variant_fused_matches_plain_batch():
    graph = small_graph()
    plain = run_random_graph_batch(
        graph, 4, 2, 3, horizon=360.0, sessions=20,
        rng=np.random.default_rng(5),
    )
    fused = run_fused_graph_sweep(
        graph,
        [SweepVariant(label="only", group_size=4, onion_routers=2, copies=3)],
        horizon=360.0,
        sessions_per_variant=20,
        rng=np.random.default_rng(5),
    )
    assert len(fused) == 1
    assert batch_fields(fused[0]) == batch_fields(plain)


def test_fused_graph_sweep_kernel_matches_columnar():
    graph = small_graph()
    runs = []
    for consume in ("columnar", "kernel"):
        sweep = run_fused_graph_sweep(
            graph,
            GRID,
            horizon=360.0,
            sessions_per_variant=15,
            rng=np.random.default_rng(11),
            consume=consume,
        )
        runs.append([batch_fields(batch) for batch in sweep])
    assert runs[0] == runs[1]


def test_fused_sweep_shares_common_random_numbers():
    # Same seed, same graph: the L=1 slot of a fused grid must equal a
    # single-variant fused run of that slot *only* when it is the first
    # variant (later variants sit deeper in the shared draw sequence) —
    # the grid shares one stream rather than resampling per point.
    graph = small_graph()
    full = run_fused_graph_sweep(
        graph, GRID, horizon=360.0, sessions_per_variant=15,
        rng=np.random.default_rng(11),
    )
    first_only = run_fused_graph_sweep(
        graph, GRID[:1], horizon=360.0, sessions_per_variant=15,
        rng=np.random.default_rng(11),
    )
    assert batch_fields(full[0]) == batch_fields(first_only[0])


def test_fused_sweep_rejects_empty_grid():
    with pytest.raises(ValueError, match="at least one variant"):
        run_fused_graph_sweep(
            small_graph(), [], horizon=100.0, sessions_per_variant=5
        )


def test_fused_trace_sweep_kernel_matches_columnar():
    trace = cambridge_like_trace(rng=np.random.default_rng(14)).normalized()
    variants = [
        SweepVariant(label="L=1", group_size=3, onion_routers=2, copies=1),
        SweepVariant(label="L=2", group_size=3, onion_routers=2, copies=2),
    ]
    runs = []
    for consume in ("columnar", "kernel"):
        sweep = run_fused_trace_sweep(
            trace,
            variants,
            deadline=1800.0,
            sessions_per_variant=10,
            rng=np.random.default_rng(2),
            consume=consume,
        )
        runs.append([batch_fields(batch) for batch in sweep])
    assert runs[0] == runs[1]


def test_single_variant_fused_trace_matches_plain_batch():
    trace = cambridge_like_trace(rng=np.random.default_rng(14)).normalized()
    plain = run_trace_batch(
        trace, 3, 2, 2, deadline=1800.0, sessions=10,
        rng=np.random.default_rng(2),
    )
    fused = run_fused_trace_sweep(
        trace,
        [SweepVariant(label="only", group_size=3, onion_routers=2, copies=2)],
        deadline=1800.0,
        sessions_per_variant=10,
        rng=np.random.default_rng(2),
    )
    assert batch_fields(fused[0]) == batch_fields(plain)


# ----------------------------------------------------------------------
# the parallel wrapper
# ----------------------------------------------------------------------


def test_parallel_fused_sweep_serial_equals_direct_call():
    graph = small_graph()
    direct = run_fused_graph_sweep(
        graph, GRID, horizon=360.0, sessions_per_variant=12,
        rng=np.random.default_rng(9),
    )
    wrapped = run_parallel_fused_sweep(
        run_fused_graph_sweep,
        variants=GRID,
        sessions_per_variant=12,
        workers=1,
        rng=np.random.default_rng(9),
        graph=graph,
        horizon=360.0,
    )
    assert [batch_fields(b) for b in wrapped] == [batch_fields(b) for b in direct]


def test_parallel_fused_sweep_merges_chunks_per_variant():
    graph = small_graph()
    sweep = run_parallel_fused_sweep(
        run_fused_graph_sweep,
        variants=GRID,
        sessions_per_variant=10,
        workers=2,
        rng=np.random.default_rng(9),
        graph=graph,
        horizon=240.0,
    )
    assert len(sweep) == len(GRID)
    for batch in sweep:
        assert len(batch) == 10
        for route, outcome in batch:
            assert outcome.status in {"pending", "delivered", "expired"}


# ----------------------------------------------------------------------
# figure runners select the kernel path by default
# ----------------------------------------------------------------------


class _RecordingEngine(SimulationEngine):
    instances = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        _RecordingEngine.instances.append(self)


@pytest.fixture
def recorded_engines(monkeypatch):
    _RecordingEngine.instances = []
    monkeypatch.setattr(runners_module, "SimulationEngine", _RecordingEngine)
    return _RecordingEngine.instances


def test_figure_10_runs_through_kernels_by_default(recorded_engines):
    from repro.experiments.delivery_figs import figure_10

    figure_10(
        copy_counts=(1, 2),
        graphs=1,
        sessions_per_graph=6,
        seed=10,
    )
    assert recorded_engines, "figure_10 never built an engine"
    for engine in recorded_engines:
        assert engine.consume == "kernel"
        counts = engine.dispatch_mode_counts
        # The fused L grid: the L=1 slot through the single-copy kernel,
        # L=2 through the multi-copy kernel, nothing on the object loops.
        assert counts.get("kernel-single", 0) == 6
        assert counts.get("kernel-multicopy", 0) == 6
        assert "columnar" not in counts
        assert "iterator" not in counts


def test_figure_14_runs_through_kernel_by_default(recorded_engines):
    from repro.experiments.trace_figs import figure_14

    figure_14(sessions=5, seed=14)
    assert recorded_engines, "figure_14 never built an engine"
    for engine in recorded_engines:
        assert engine.consume == "kernel"
        counts = engine.dispatch_mode_counts
        assert counts.get("kernel-single", 0) == 5
        assert "columnar" not in counts


def test_explicit_opt_out_falls_back_to_columnar(recorded_engines):
    graph = small_graph()
    run_fused_graph_sweep(
        graph,
        GRID[:1],
        horizon=120.0,
        sessions_per_variant=4,
        rng=np.random.default_rng(3),
        kernel=False,
    )
    assert recorded_engines
    for engine in recorded_engines:
        assert engine.consume == "auto"

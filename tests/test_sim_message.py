"""Tests for the Message (bundle) model."""

import pytest

from repro.sim.message import Message


class TestMessage:
    def test_expiry(self):
        message = Message(source=0, destination=1, created_at=10.0, deadline=50.0)
        assert message.expires_at == 60.0
        assert not message.expired(60.0)
        assert message.expired(60.1)

    def test_unique_ids(self):
        a = Message(source=0, destination=1, created_at=0, deadline=1)
        b = Message(source=0, destination=1, created_at=0, deadline=1)
        assert a.message_id != b.message_id

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            Message(source=3, destination=3, created_at=0, deadline=1)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            Message(source=0, destination=1, created_at=0, deadline=0)

    def test_negative_creation_rejected(self):
        with pytest.raises(ValueError, match="created_at"):
            Message(source=0, destination=1, created_at=-1, deadline=1)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            Message(source=0, destination=1, created_at=0, deadline=1, size=0)

    def test_payload_carried(self):
        message = Message(
            source=0, destination=1, created_at=0, deadline=1, payload=b"data"
        )
        assert message.payload == b"data"

    def test_frozen(self):
        message = Message(source=0, destination=1, created_at=0, deadline=1)
        with pytest.raises(AttributeError):
            message.deadline = 99

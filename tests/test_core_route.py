"""Tests for the OnionRoute value object."""

import pytest

from repro.contacts.graph import ContactGraph
from repro.core.route import OnionRoute


def _route():
    return OnionRoute(
        source=0,
        destination=19,
        group_ids=(1, 2),
        groups=((5, 6, 7, 8, 9), (10, 11, 12, 13, 14)),
    )


class TestOnionRoute:
    def test_eta_and_k(self):
        route = _route()
        assert route.onion_routers == 2
        assert route.eta == 3

    def test_next_group_members(self):
        route = _route()
        assert route.next_group_members(1) == (5, 6, 7, 8, 9)
        assert route.next_group_members(2) == (10, 11, 12, 13, 14)
        assert route.next_group_members(3) == (19,)

    def test_next_group_out_of_range(self):
        with pytest.raises(ValueError, match="hop must be"):
            _route().next_group_members(4)
        with pytest.raises(ValueError, match="hop must be"):
            _route().next_group_members(0)

    def test_hop_rates_delegates_to_model(self):
        graph = ContactGraph.complete(20, 0.01)
        assert _route().hop_rates(graph) == pytest.approx([0.05, 0.05, 0.05])

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            OnionRoute(source=0, destination=0, group_ids=(1,), groups=((2,),))

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            OnionRoute(source=0, destination=1, group_ids=(), groups=())

    def test_misaligned_ids_rejected(self):
        with pytest.raises(ValueError, match="align"):
            OnionRoute(source=0, destination=1, group_ids=(1, 2), groups=((3,),))

    def test_duplicate_group_ids_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            OnionRoute(
                source=0, destination=1, group_ids=(1, 1), groups=((2,), (3,))
            )

    def test_empty_member_group_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            OnionRoute(source=0, destination=1, group_ids=(1,), groups=((),))

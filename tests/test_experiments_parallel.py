"""Tests for the parallel batch layer: chunking, seeding, determinism."""

import numpy as np
import pytest

from repro.cli import main
from repro.contacts.random_graph import random_contact_graph
from repro.contacts.events import (
    ColumnarEventSource,
    ExponentialContactProcess,
)
from repro.experiments.parallel import (
    WorkerPool,
    chunk_sizes,
    default_chunk_count,
    parallel_map,
    run_parallel_batch,
    run_parallel_montecarlo,
    spawn_chunk_seeds,
)
from repro.experiments.runners import (
    run_random_graph_batch,
    security_montecarlo,
)


class TestChunkSizes:
    def test_partitions_exactly(self):
        for total, chunks in [(10, 3), (7, 7), (100, 4), (5, 9), (1, 1)]:
            sizes = chunk_sizes(total, chunks)
            assert sum(sizes) == total
            assert all(size >= 1 for size in sizes)
            assert len(sizes) == min(chunks, total)
            assert max(sizes) - min(sizes) <= 1

    def test_deterministic_layout(self):
        assert chunk_sizes(10, 3) == chunk_sizes(10, 3) == [4, 3, 3]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            chunk_sizes(0, 3)
        with pytest.raises(ValueError):
            chunk_sizes(10, 0)


class TestSpawnChunkSeeds:
    def test_reproducible_from_int_seed(self):
        first = [s.entropy for s in spawn_chunk_seeds(123, 4)]
        second = [s.entropy for s in spawn_chunk_seeds(123, 4)]
        assert first == second

    def test_children_are_distinct(self):
        seeds = spawn_chunk_seeds(7, 8)
        streams = [np.random.default_rng(s).random() for s in seeds]
        assert len(set(streams)) == len(streams)


def _square(x):
    return x * x


class TestParallelMap:
    def test_inline_and_pooled_agree(self):
        tasks = [(k,) for k in range(6)]
        assert parallel_map(_square, tasks, 1) == parallel_map(_square, tasks, 2)

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [(1,)], 0)


@pytest.fixture(scope="module")
def graph():
    return random_contact_graph(30, (10.0, 120.0), rng=np.random.default_rng(3))


def _batch(graph, workers, seed=17):
    pairs = run_parallel_batch(
        run_random_graph_batch,
        sessions=24,
        workers=workers,
        rng=seed,
        graph=graph,
        group_size=4,
        onion_routers=2,
        copies=1,
        horizon=240.0,
    )
    return [
        (o.delivered, o.delivery_time, o.transmissions, o.status)
        for _, o in pairs
    ]


class TestRunParallelBatch:
    def test_workers_1_is_seed_exact_with_serial(self, graph):
        serial = run_random_graph_batch(
            graph, 4, 2, copies=1, horizon=240.0, sessions=24,
            rng=np.random.default_rng(17),
        )
        wrapped = run_parallel_batch(
            run_random_graph_batch,
            sessions=24,
            workers=1,
            rng=np.random.default_rng(17),
            graph=graph,
            group_size=4,
            onion_routers=2,
            copies=1,
            horizon=240.0,
        )
        assert [o.delivered for _, o in serial] == [
            o.delivered for _, o in wrapped
        ]
        assert [o.delivery_time for _, o in serial] == [
            o.delivery_time for _, o in wrapped
        ]

    def test_workers_4_repeated_runs_identical(self, graph):
        # The determinism contract: fixed master seed -> identical merged
        # batch, independent of pool scheduling.
        assert _batch(graph, workers=4) == _batch(graph, workers=4)

    def test_session_count_preserved(self, graph):
        assert len(_batch(graph, workers=3)) == 24


class TestRunParallelMontecarlo:
    def kwargs(self):
        return dict(
            n=60, group_size=4, onion_routers=2, copies=1,
            compromise_rate=0.2,
        )

    def test_repeated_runs_identical(self):
        first = run_parallel_montecarlo(
            security_montecarlo, trials=40, workers=4, rng=5, **self.kwargs()
        )
        second = run_parallel_montecarlo(
            security_montecarlo, trials=40, workers=4, rng=5, **self.kwargs()
        )
        assert first == second

    def test_estimates_are_probabilities(self):
        values = run_parallel_montecarlo(
            security_montecarlo, trials=40, workers=2, rng=6, **self.kwargs()
        )
        assert all(0.0 <= v <= 1.0 for v in values)


class TestCliWorkersValidation:
    def test_rejects_zero_workers(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure", "6", "--trials", "10", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_rejects_negative_workers(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure", "6", "--trials", "10", "--workers", "-3"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_accepts_workers_for_figure(self):
        assert main(["figure", "6", "--trials", "20", "--workers", "2"]) == 0


def _boom(x):
    if x == 2:
        raise RuntimeError("chunk exploded")
    return x


class TestWorkerPool:
    def test_requested_vs_effective(self):
        pool = WorkerPool(8, max_processes=2)
        assert pool.workers == 8
        assert pool.processes == 2
        pool.close()

    def test_inline_when_effective_is_one(self):
        with WorkerPool(4, max_processes=1) as pool:
            assert pool.processes == 1
            assert parallel_map(_square, [(k,) for k in range(4)], pool) == [
                0, 1, 4, 9
            ]
            assert pool._executor is None  # never forked

    def test_pool_reuse_matches_inline(self):
        tasks = [(k,) for k in range(6)]
        with WorkerPool(2, max_processes=2) as pool:
            pooled_first = parallel_map(_square, tasks, pool)
            pooled_second = parallel_map(_square, tasks, pool)
        assert pooled_first == pooled_second == parallel_map(_square, tasks, 1)

    def test_requested_workers_fix_chunk_layout(self, graph):
        # A pool constrained to one process must still produce the
        # requested-parallelism merge, not the serial stream.
        chunked = _batch(graph, workers=4)
        with WorkerPool(4, max_processes=1) as pool:
            constrained = _batch(graph, workers=pool)
        assert constrained == chunked

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(2, max_processes=0)


class TestParallelMapErrors:
    def test_inline_failure_notes_chunk_index(self):
        tasks = [(k,) for k in range(4)]
        with pytest.raises(RuntimeError) as excinfo:
            parallel_map(_boom, tasks, 1)
        assert any("chunk 2/4" in note for note in excinfo.value.__notes__)

    def test_pooled_failure_notes_chunk_and_cancels(self):
        tasks = [(k,) for k in range(4)]
        with WorkerPool(2, max_processes=2) as pool:
            with pytest.raises(RuntimeError) as excinfo:
                parallel_map(_boom, tasks, pool)
        notes = "\n".join(excinfo.value.__notes__)
        assert "chunk 2/4" in notes
        assert "cancelled" in notes


def _empty_mc(trials, rng):
    return ()


def _widening_mc(trials, rng):
    # Width depends on the chunk's trial count -> mismatched chunks.
    return tuple(0.5 for _ in range(trials))


class TestMontecarloValidation:
    def test_empty_chunk_raises_value_error(self):
        with pytest.raises(ValueError) as excinfo:
            run_parallel_montecarlo(_empty_mc, trials=10, workers=2, rng=1)
        assert "_empty_mc" in str(excinfo.value)
        assert "chunk 0" in str(excinfo.value)

    def test_width_mismatch_raises_value_error(self):
        with pytest.raises(ValueError):
            run_parallel_montecarlo(
                _widening_mc, trials=9, workers=2, rng=1, chunks=2
            )


def _shared_signature(pairs):
    return [
        (o.delivered, o.delivery_time, o.transmissions, o.status)
        for _, o in pairs
    ]


class TestSharedStreamParallel:
    def _block(self, graph, horizon=240.0):
        return ExponentialContactProcess(
            graph, rng=np.random.default_rng(33)
        ).events_until_columnar(horizon)

    def test_matches_serial_replay_of_chunk_seeds(self, graph):
        # The shared-stream merge must equal running each spawned chunk
        # serially against a fresh cursor over the same block.
        block = self._block(graph)
        merged = run_parallel_batch(
            run_random_graph_batch,
            sessions=24,
            workers=4,
            rng=np.random.default_rng(17),
            shared_events=block,
            graph=graph,
            group_size=4,
            onion_routers=2,
            copies=1,
            horizon=240.0,
        )
        sizes = chunk_sizes(24, default_chunk_count(24))
        seeds = spawn_chunk_seeds(np.random.default_rng(17), len(sizes))
        replayed = []
        for size, seed in zip(sizes, seeds):
            replayed.extend(
                run_random_graph_batch(
                    graph, 4, 2, copies=1, horizon=240.0, sessions=size,
                    rng=np.random.default_rng(seed),
                    events=ColumnarEventSource(block),
                )
            )
        assert _shared_signature(merged) == _shared_signature(replayed)

    def test_pool_and_int_workers_agree(self, graph):
        block = self._block(graph)

        def run(workers):
            return _shared_signature(
                run_parallel_batch(
                    run_random_graph_batch,
                    sessions=24,
                    workers=workers,
                    rng=np.random.default_rng(17),
                    shared_events=block,
                    graph=graph,
                    group_size=4,
                    onion_routers=2,
                    copies=1,
                    horizon=240.0,
                )
            )

        with WorkerPool(4, max_processes=2) as pool:
            pooled = run(pool)
        assert pooled == run(4)

    def test_workers_1_uses_block_directly(self, graph):
        block = self._block(graph)
        direct = run_random_graph_batch(
            graph, 4, 2, copies=1, horizon=240.0, sessions=24,
            rng=np.random.default_rng(17),
            events=ColumnarEventSource(block),
        )
        wrapped = run_parallel_batch(
            run_random_graph_batch,
            sessions=24,
            workers=1,
            rng=np.random.default_rng(17),
            shared_events=block,
            graph=graph,
            group_size=4,
            onion_routers=2,
            copies=1,
            horizon=240.0,
        )
        assert _shared_signature(direct) == _shared_signature(wrapped)

    def test_rejects_non_block_shared_events(self, graph):
        with pytest.raises(TypeError):
            run_parallel_batch(
                run_random_graph_batch,
                sessions=8,
                workers=2,
                rng=1,
                shared_events=object(),
                graph=graph,
                group_size=4,
                onion_routers=2,
                copies=1,
                horizon=240.0,
            )

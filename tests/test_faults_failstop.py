"""Tests for permanent fail-stop crashes."""

import math

import pytest

from repro.contacts.events import ExponentialContactProcess
from repro.contacts.graph import ContactGraph
from repro.faults.failstop import FailStopContactProcess, FailStopSchedule


@pytest.fixture
def graph():
    return ContactGraph.complete(8, 0.05)


class TestSchedule:
    def test_explicit_deaths(self):
        schedule = FailStopSchedule(4, deaths={1: 10.0, 3: 25.0})
        assert schedule.death_time(0) == math.inf
        assert schedule.death_time(1) == 10.0
        assert not schedule.is_dead(1, 9.9)
        assert schedule.is_dead(1, 10.0)
        assert schedule.is_up(1, 9.9)
        assert not schedule.is_up(1, 10.0)

    def test_sampled_deaths_mean(self):
        schedule = FailStopSchedule(4000, death_rate=0.01, rng=0)
        times = [schedule.death_time(node) for node in range(4000)]
        assert sum(times) / len(times) == pytest.approx(100.0, rel=0.1)

    def test_survivors(self):
        schedule = FailStopSchedule(4, deaths={1: 10.0, 3: 25.0})
        assert schedule.survivors(5.0) == 4
        assert schedule.survivors(15.0) == 3
        assert schedule.survivors(30.0) == 2

    def test_exactly_one_spec_required(self):
        with pytest.raises(ValueError):
            FailStopSchedule(4)
        with pytest.raises(ValueError):
            FailStopSchedule(4, death_rate=0.1, deaths={0: 1.0})

    def test_rejects_bad_nodes(self):
        with pytest.raises(ValueError):
            FailStopSchedule(4, deaths={7: 1.0})
        schedule = FailStopSchedule(4, deaths={})
        with pytest.raises(ValueError):
            schedule.death_time(9)


class TestProcess:
    def test_dead_nodes_lose_their_contacts(self, graph):
        schedule = FailStopSchedule(graph.n, deaths={0: 100.0})
        events = FailStopContactProcess(
            ExponentialContactProcess(graph, rng=1), schedule
        )
        for event in events.events_until(1000.0):
            if event.time >= 100.0:
                assert 0 not in (event.a, event.b)

    def test_no_deaths_is_identity(self, graph):
        base = list(ExponentialContactProcess(graph, rng=2).events_until(300.0))
        filtered = list(
            FailStopContactProcess(
                ExponentialContactProcess(graph, rng=2),
                FailStopSchedule(graph.n, deaths={}),
            ).events_until(300.0)
        )
        assert base == filtered

"""Degradation-ladder tests: kernel failures must degrade byte-identically.

The resilience contract has two levels. Inside the engine, a kernel that
fails *before dispatching anything* routes its whole group through the
columnar object loop (and a partially-dispatched kernel must refuse to —
replaying advanced sessions would violate causality). Inside a parallel
chunk, :func:`repro.experiments.parallel._run_chunk_with_ladder` retries
the chunk on the next consume rung (kernel → columnar → iterator),
rebuilding all chunk state from the seed. Both levels promise outcomes
byte-identical to the iterator path — these tests mix kernel-eligible and
fault-carrying sessions in one batch and check exactly that.
"""

import numpy as np
import pytest

from repro.adversary.dropping import DroppingRelays
from repro.contacts.events import ColumnarEventSource, ExponentialContactProcess
from repro.contacts.random_graph import random_contact_graph
from repro.core.multi_copy import MultiCopySession
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.single_copy import SingleCopySession
from repro.experiments.parallel import (
    _ChunkPayload,
    _degradation_rungs,
    _run_batch_chunk,
)
from repro.faults.recovery import FaultPlan, RecoveryPolicy
from repro.sim.engine import SimulationEngine
from repro.sim.kernel import BatchKernel
from repro.sim.message import Message
from repro.utils.resilience import KERNEL_FALLBACK


def outcome_fields(outcomes):
    """Every DeliveryOutcome field, fully materialised for == comparison."""
    return [
        (
            o.delivered,
            o.delivery_time,
            o.transmissions,
            o.expired_copies,
            o.lost_copies,
            o.created_at,
            o.status,
            tuple(tuple(p) for p in o.paths),
            tuple(o.transfers),
        )
        for o in outcomes
    ]


N = 30
HORIZON = 360.0


def mixed_sessions(seed):
    """Kernel-eligible sessions interleaved with fault-carrying ones."""
    rng = np.random.default_rng(seed)
    directory = OnionGroupDirectory(N, 3, rng=rng)
    plan = FaultPlan(
        relays=DroppingRelays(
            frozenset(range(5, 12)), 0.6, rng=np.random.default_rng(99)
        )
    )
    sessions = []
    for index in range(12):
        source, destination = rng.choice(N, size=2, replace=False)
        route = directory.select_route(int(source), int(destination), 2, rng=rng)
        message = Message(
            source=int(source),
            destination=int(destination),
            created_at=0.0,
            deadline=HORIZON,
        )
        kind = index % 3
        if kind == 0:
            sessions.append(SingleCopySession(message, route))  # kernel-eligible
        elif kind == 1:
            sessions.append(MultiCopySession(message, route, copies=3))
        else:
            sessions.append(
                SingleCopySession(
                    message,
                    route,
                    faults=plan,
                    recovery=RecoveryPolicy(custody_timeout=30.0, max_retries=2),
                )
            )
    return sessions


@pytest.fixture(scope="module")
def block():
    graph = random_contact_graph(N, (10.0, 120.0), rng=np.random.default_rng(7))
    return ExponentialContactProcess(
        graph, rng=np.random.default_rng(21)
    ).events_until_columnar(HORIZON)


def run_mixed(block, consume):
    engine = SimulationEngine(
        ColumnarEventSource(block), horizon=HORIZON, consume=consume
    )
    sessions = mixed_sessions(seed=13)
    for session in sessions:
        engine.add_session(session)
    engine.run()
    return engine, [session.outcome() for session in sessions]


class TestEngineKernelFallback:
    def test_predispatch_kernel_error_matches_iterator_path(
        self, block, monkeypatch
    ):
        """Satellite acceptance: a mid-batch kernel error on a mixed batch
        degrades to the object loop with outcomes byte-identical to the
        iterator path."""
        _, via_iterator = run_mixed(block, "iterator")

        def refuse(self, block, on_session_error=None):
            raise RuntimeError("injected kernel failure")  # dispatches == 0

        monkeypatch.setattr(BatchKernel, "run", refuse)
        engine, via_kernel = run_mixed(block, "kernel")

        assert outcome_fields(via_kernel) == outcome_fields(via_iterator)
        fallbacks = engine.fallback_events
        assert len(fallbacks) == 1
        assert fallbacks[0].kind == KERNEL_FALLBACK
        assert fallbacks[0].where == "BatchKernel"
        assert "injected kernel failure" in fallbacks[0].detail
        # The single-copy group fell back to the columnar loop; nothing ran
        # under the single-copy kernel.
        assert engine.dispatch_mode_counts.get("kernel-single", 0) == 0
        assert engine.dispatch_mode_counts.get("columnar", 0) > 0

    def test_clean_kernel_run_matches_iterator_and_records_nothing(self, block):
        engine, via_kernel = run_mixed(block, "kernel")
        _, via_iterator = run_mixed(block, "iterator")
        assert outcome_fields(via_kernel) == outcome_fields(via_iterator)
        assert engine.fallback_events == ()
        assert engine.dispatch_mode_counts.get("kernel-single", 0) > 0

    def test_partial_kernel_failure_refuses_to_degrade(self, block, monkeypatch):
        # Once the kernel has dispatched state changes, falling back would
        # replay advanced sessions — the engine must propagate instead,
        # pointing at the chunk-level remedy.
        original = BatchKernel.run

        def dispatch_then_die(self, block, on_session_error=None):
            original(self, block, on_session_error=on_session_error)
            assert self.dispatches > 0
            raise RuntimeError("injected post-dispatch failure")

        monkeypatch.setattr(BatchKernel, "run", dispatch_then_die)
        with pytest.raises(RuntimeError, match="post-dispatch") as excinfo:
            run_mixed(block, "kernel")
        assert any("kernel=False" in note for note in excinfo.value.__notes__)


# ----------------------------------------------------------------------
# the chunk-level ladder (kernel → columnar → iterator inside a retry)
# ----------------------------------------------------------------------


def _ladder_probe(sessions, rng, fail_on=(), kernel=None, consume="auto"):
    """A stand-in batch fn whose failures are selected per rung."""
    rung = "kernel" if kernel is not False else consume
    if rung in fail_on:
        raise RuntimeError(f"injected failure on rung {rung!r}")
    return [(rung, sessions, float(rng.random()))]


def _no_knobs_probe(sessions, rng):
    raise RuntimeError("no rungs to degrade to")


class TestChunkLadder:
    def seed(self):
        return np.random.SeedSequence(42)

    def test_kernel_failure_degrades_to_next_rung_seed_exact(self):
        payload = _run_batch_chunk(
            _ladder_probe, 5, self.seed(), {"fail_on": ("kernel",), "kernel": True}
        )
        assert isinstance(payload, _ChunkPayload)
        # The degraded rung re-ran from the chunk seed: same draw as a
        # clean kernel=False call.
        clean = _ladder_probe(
            sessions=5, rng=np.random.default_rng(self.seed()), kernel=False
        )
        assert payload.result == clean
        assert [e["kind"] for e in payload.events] == [KERNEL_FALLBACK]
        assert payload.events[0]["resolution"] == "degraded"
        assert "kernel=False" in payload.events[0]["detail"]

    def test_double_failure_reaches_iterator_rung(self):
        payload = _run_batch_chunk(
            _ladder_probe,
            5,
            self.seed(),
            {"fail_on": ("kernel", "auto"), "kernel": True},
        )
        assert payload.result[0][0] == "iterator"
        assert [e["kind"] for e in payload.events] == [KERNEL_FALLBACK] * 2

    def test_exhausted_ladder_raises_last_rung_error(self):
        with pytest.raises(RuntimeError, match="rung 'iterator'"):
            _run_batch_chunk(
                _ladder_probe,
                5,
                self.seed(),
                {"fail_on": ("kernel", "auto", "iterator"), "kernel": True},
            )

    def test_clean_chunk_records_no_events(self):
        payload = _run_batch_chunk(_ladder_probe, 5, self.seed(), {"kernel": True})
        assert payload.events == []
        assert payload.result[0][0] == "kernel"

    def test_rungs_respect_pinned_knobs(self):
        three = _degradation_rungs(_ladder_probe, {"kernel": True})
        assert [label for label, _ in three] == [
            "requested configuration",
            "kernel=False",
            "consume='iterator'",
        ]
        # The iterator rung builds on the kernel-off rung, not the original.
        assert three[2][1] == {"kernel": False, "consume": "iterator"}

        pinned_off = _degradation_rungs(_ladder_probe, {"kernel": False})
        assert [label for label, _ in pinned_off] == [
            "requested configuration",
            "consume='iterator'",
        ]

        pinned_iterator = _degradation_rungs(
            _ladder_probe, {"kernel": False, "consume": "iterator"}
        )
        assert [label for label, _ in pinned_iterator] == [
            "requested configuration"
        ]

    def test_fn_without_knobs_has_no_ladder(self):
        rungs = _degradation_rungs(_no_knobs_probe, {})
        assert [label for label, _ in rungs] == ["requested configuration"]
        with pytest.raises(RuntimeError, match="no rungs"):
            _run_batch_chunk(_no_knobs_probe, 5, self.seed(), {})

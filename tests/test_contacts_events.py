"""Tests for contact event streams."""

import numpy as np
import pytest

from repro.contacts.events import (
    ContactEvent,
    ExponentialContactProcess,
    TraceReplayProcess,
)
from repro.contacts.graph import ContactGraph
from repro.contacts.random_graph import random_contact_graph
from repro.contacts.traces import ContactRecord, ContactTrace


class TestContactEvent:
    def test_involves(self):
        event = ContactEvent(time=1.0, a=3, b=5)
        assert event.involves(3)
        assert event.involves(5)
        assert not event.involves(4)

    def test_peer_of(self):
        event = ContactEvent(time=1.0, a=3, b=5)
        assert event.peer_of(3) == 5
        assert event.peer_of(5) == 3

    def test_peer_of_outsider_raises(self):
        event = ContactEvent(time=1.0, a=3, b=5)
        with pytest.raises(ValueError, match="not part of"):
            event.peer_of(9)

    def test_slots_no_instance_dict(self):
        # The hot event dataclass is slotted: no per-instance __dict__, and
        # no ordering protocol — nothing sorts event objects directly any
        # more (the jitter buffer and the engine both order plain tuples).
        event = ContactEvent(time=1.0, a=0, b=1)
        assert not hasattr(event, "__dict__")
        with pytest.raises(TypeError):
            event < ContactEvent(time=2.0, a=0, b=1)


class TestExponentialContactProcess:
    def test_events_in_chronological_order(self):
        graph = ContactGraph.complete(10, 0.05)
        process = ExponentialContactProcess(graph, rng=0)
        times = [event.time for event in process.events_until(200.0)]
        assert times == sorted(times)
        assert times, "expected some events"

    def test_horizon_respected(self):
        graph = ContactGraph.complete(5, 0.1)
        process = ExponentialContactProcess(graph, rng=1)
        assert all(e.time <= 50.0 for e in process.events_until(50.0))

    def test_resumable_across_calls(self):
        graph = ContactGraph.complete(5, 0.1)
        process = ExponentialContactProcess(graph, rng=2)
        first = list(process.events_until(50.0))
        second = list(process.events_until(100.0))
        assert all(e.time > 50.0 for e in second) or not second
        assert all(e.time <= 50.0 for e in first)

    def test_zero_rate_pairs_never_meet(self):
        rates = np.zeros((3, 3))
        rates[0, 1] = rates[1, 0] = 0.5
        graph = ContactGraph(rates)
        process = ExponentialContactProcess(graph, rng=3)
        for event in process.events_until(1000.0):
            assert {event.a, event.b} == {0, 1}

    def test_event_rate_statistics(self):
        """Pair event count over T should be ≈ Poisson(λT)."""
        graph = ContactGraph.complete(2, 0.2)
        process = ExponentialContactProcess(graph, rng=4)
        count = sum(1 for _ in process.events_until(5000.0))
        assert count == pytest.approx(0.2 * 5000, rel=0.1)

    def test_now_tracks_last_event(self):
        graph = ContactGraph.complete(3, 0.1)
        process = ExponentialContactProcess(graph, rng=5)
        events = list(process.events_until(100.0))
        assert process.now == events[-1].time

    def test_seed_reproducible(self):
        graph = ContactGraph.complete(4, 0.1)
        a = [
            (e.time, e.a, e.b)
            for e in ExponentialContactProcess(graph, rng=6).events_until(100)
        ]
        b = [
            (e.time, e.a, e.b)
            for e in ExponentialContactProcess(graph, rng=6).events_until(100)
        ]
        assert a == b


class TestTraceReplayProcess:
    def _trace(self):
        return ContactTrace(
            [
                ContactRecord(a=0, b=1, start=5.0, end=6.0),
                ContactRecord(a=1, b=2, start=10.0, end=12.0),
                ContactRecord(a=0, b=2, start=20.0, end=25.0),
            ]
        )

    def test_replay_in_order(self):
        process = TraceReplayProcess(self._trace())
        times = [e.time for e in process.events_until(100.0)]
        assert times == [5.0, 10.0, 20.0]

    def test_horizon_cuts_stream(self):
        process = TraceReplayProcess(self._trace())
        assert len(list(process.events_until(10.0))) == 2

    def test_resume_after_horizon(self):
        process = TraceReplayProcess(self._trace())
        list(process.events_until(10.0))
        remaining = list(process.events_until(100.0))
        assert [e.time for e in remaining] == [20.0]

    def test_start_time_skips_earlier_records(self):
        process = TraceReplayProcess(self._trace(), start_time=6.0)
        times = [e.time for e in process.events_until(100.0)]
        assert times == [10.0, 20.0]

    def test_type_checked(self):
        with pytest.raises(TypeError, match="ContactTrace"):
            TraceReplayProcess([(0, 1, 0, 1)])


class TestBlockGapSampling:
    """Block pre-draws must not change seed reproducibility or rates."""

    def _graph(self):
        return random_contact_graph(12, (5.0, 60.0), rng=4)

    def test_block_size_one_matches_any_block(self):
        # Per-pair draw order is block-size invariant: every pair consumes
        # its own exponential stream in order, so only the *interleaving*
        # of generator calls changes with the block size — and each pair's
        # scale is fixed, so the merged event stream is identical.
        graph = self._graph()
        streams = []
        for block in (1, 4, 32):
            process = ExponentialContactProcess(graph, rng=9, block=block)
            streams.append([(e.time, e.a, e.b) for e in process.events_until(500.0)])
        assert streams[0] != []
        # Same seed, same block -> identical; different blocks draw the
        # generator in a different order, so streams may differ while
        # remaining correctly distributed (checked statistically below).
        repeat = ExponentialContactProcess(graph, rng=9, block=4)
        assert streams[1] == [(e.time, e.a, e.b) for e in repeat.events_until(500.0)]

    def test_refill_preserves_pair_rates(self):
        # Tiny blocks force many refills; the empirical contact count per
        # pair must still match rate * horizon within sampling noise.
        graph = self._graph()
        horizon = 4000.0
        process = ExponentialContactProcess(graph, rng=11, block=2)
        counts = {}
        for event in process.events_until(horizon):
            counts[(event.a, event.b)] = counts.get((event.a, event.b), 0) + 1
        for i, j in graph.pairs():
            expected = graph.rate(i, j) * horizon
            observed = counts.get((i, j), 0)
            assert abs(observed - expected) < 5 * (expected ** 0.5) + 5

    def test_block_must_be_positive(self):
        with pytest.raises(ValueError, match="block"):
            ExponentialContactProcess(self._graph(), rng=1, block=0)

"""Tests for contact statistics and exponential-fit diagnostics."""

import numpy as np
import pytest

from repro.contacts.graph import ContactGraph
from repro.contacts.statistics import (
    ContactSummary,
    fit_exponential,
    graph_rate_percentiles,
    intercontact_samples,
    pooled_exponential_fit,
    summarize_trace,
)
from repro.contacts.traces import ContactRecord, ContactTrace


def _poisson_trace(rate=0.05, horizon=20000.0, pairs=((0, 1), (1, 2)), seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for a, b in pairs:
        t = 0.0
        while True:
            t += rng.exponential(1 / rate)
            if t > horizon:
                break
            records.append(ContactRecord(a=a, b=b, start=t, end=t + 1))
    return ContactTrace(records)


class TestIntercontactSamples:
    def test_gaps_extracted_per_pair(self):
        trace = ContactTrace(
            [ContactRecord(a=0, b=1, start=t, end=t + 1) for t in (0, 10, 25)]
        )
        samples = intercontact_samples(trace)
        assert np.allclose(samples[(0, 1)], [10, 15])

    def test_single_contact_pairs_skipped(self):
        trace = ContactTrace(
            [
                ContactRecord(a=0, b=1, start=0, end=1),
                ContactRecord(a=1, b=2, start=5, end=6),
                ContactRecord(a=1, b=2, start=9, end=10),
            ]
        )
        samples = intercontact_samples(trace)
        assert (0, 1) not in samples
        assert (1, 2) in samples


class TestExponentialFit:
    def test_fits_true_exponential(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(20.0, size=4000)
        fit = fit_exponential(samples)
        assert fit.rate == pytest.approx(0.05, rel=0.05)
        assert not fit.rejects_exponential()

    def test_rejects_heavy_tail(self):
        rng = np.random.default_rng(2)
        samples = rng.pareto(1.2, size=4000) + 0.01
        fit = fit_exponential(samples)
        assert fit.rejects_exponential()

    def test_rejects_constant_gaps(self):
        fit = fit_exponential(np.full(500, 10.0))
        assert fit.rejects_exponential()

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_exponential(np.array([1.0]))

    def test_negative_samples(self):
        with pytest.raises(ValueError, match="non-negative"):
            fit_exponential(np.array([1.0, -1.0]))


class TestPooledFit:
    def test_accepts_poisson_trace(self):
        trace = _poisson_trace()
        fit = pooled_exponential_fit(trace)
        assert not fit.rejects_exponential(alpha=0.01)

    def test_rejects_diurnal_trace(self):
        """Business-hours traces have overnight gap outliers: not exponential."""
        from repro.contacts.synthetic import infocom05_like_trace

        trace = infocom05_like_trace(rng=3)
        fit = pooled_exponential_fit(trace)
        assert fit.rejects_exponential()

    def test_needs_repeated_contacts(self):
        trace = ContactTrace([ContactRecord(a=0, b=1, start=0, end=1)])
        with pytest.raises(ValueError, match="two or more"):
            pooled_exponential_fit(trace)


class TestSummaries:
    def test_summarize_trace(self):
        trace = _poisson_trace()
        summary = summarize_trace(trace)
        assert summary.nodes == 3
        assert summary.pairs_met == 2
        assert summary.pairs_possible == 3
        assert summary.density == pytest.approx(2 / 3)
        assert summary.mean_intercontact == pytest.approx(20.0, rel=0.1)

    def test_graph_rate_percentiles(self):
        graph = ContactGraph.complete(10, 0.05)
        percentiles = graph_rate_percentiles(graph)
        assert percentiles[50.0] == pytest.approx(0.05)

    def test_percentiles_need_edges(self):
        graph = ContactGraph(np.zeros((3, 3)))
        with pytest.raises(ValueError, match="no positive-rate"):
            graph_rate_percentiles(graph)

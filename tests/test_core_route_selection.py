"""Tests for route-selection strategies."""

import numpy as np
import pytest

from repro.analysis.delivery import onion_path_rates
from repro.analysis.hypoexponential import Hypoexponential
from repro.contacts.graph import ContactGraph
from repro.contacts.random_graph import random_contact_graph
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.route_selection import (
    DiverseSelector,
    RateAwareSelector,
    UniformSelector,
)


@pytest.fixture
def setting():
    graph = random_contact_graph(n=60, rng=0)
    directory = OnionGroupDirectory(60, 5, rng=0)
    return graph, directory


def _model_score(graph, route, deadline=240.0):
    rates = onion_path_rates(graph, route.source, route.groups, route.destination)
    return float(Hypoexponential(rates).cdf(deadline))


class TestUniformSelector:
    def test_valid_routes(self, setting):
        _, directory = setting
        selector = UniformSelector(directory, rng=1)
        route = selector.select(0, 59, 3)
        assert route.onion_routers == 3

    def test_variety(self, setting):
        _, directory = setting
        selector = UniformSelector(directory, rng=2)
        ids = {selector.select(0, 59, 3).group_ids for _ in range(20)}
        assert len(ids) > 1


class TestRateAwareSelector:
    def test_beats_uniform_on_model_score(self, setting):
        graph, directory = setting
        deadline = 240.0
        uniform = UniformSelector(directory, rng=3)
        aware = RateAwareSelector(
            directory, graph, reference_deadline=deadline, candidates=8, rng=3
        )
        uniform_scores = [
            _model_score(graph, uniform.select(0, 59, 3), deadline)
            for _ in range(30)
        ]
        aware_scores = [
            _model_score(graph, aware.select(0, 59, 3), deadline)
            for _ in range(30)
        ]
        assert np.mean(aware_scores) > np.mean(uniform_scores)

    def test_single_candidate_is_uniform(self, setting):
        graph, directory = setting
        selector = RateAwareSelector(
            directory, graph, reference_deadline=100.0, candidates=1, rng=4
        )
        assert selector.select(0, 59, 2).onion_routers == 2

    def test_invalid_parameters(self, setting):
        graph, directory = setting
        with pytest.raises(ValueError):
            RateAwareSelector(directory, graph, reference_deadline=0.0)
        with pytest.raises(ValueError):
            RateAwareSelector(
                directory, graph, reference_deadline=10.0, candidates=0
            )


class TestDiverseSelector:
    def test_avoids_recent_groups(self, setting):
        _, directory = setting
        selector = DiverseSelector(directory, memory=6, rng=5)
        first = selector.select(0, 59, 3)
        second = selector.select(0, 59, 3)
        assert not (set(first.group_ids) & set(second.group_ids))

    def test_falls_back_when_infeasible(self):
        # 4 groups, endpoints occupy 2, K=2 uses both free groups every time
        directory = OnionGroupDirectory(20, 5)
        selector = DiverseSelector(directory, memory=8, attempts=3, rng=6)
        first = selector.select(0, 19, 2)
        second = selector.select(0, 19, 2)  # must reuse; still succeeds
        assert second.onion_routers == 2

    def test_memory_window_slides(self, setting):
        _, directory = setting
        selector = DiverseSelector(directory, memory=3, rng=7)
        for _ in range(5):
            selector.select(0, 59, 3)
        assert len(selector.recently_used) <= 3

"""Smoke tests: the fast example scripts must run end to end.

The slower examples (trace_analysis, mobile_network_load,
adaptive_deployment) are exercised by their own integration tests through
the same code paths; here we run the quick ones as real subprocesses so a
packaging or import regression cannot hide.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickstart:
    @pytest.fixture(scope="class")
    def output(self):
        return _run("quickstart.py")

    def test_prints_route_and_models(self, output):
        assert "route:" in output
        assert "model delivery rate" in output
        assert "simulated delivery rate" in output
        assert "model path anonymity" in output

    def test_models_simulation_consistent(self, output):
        # the documented model-vs-simulation caveat line is present
        assert "optimistic on the last hop" in output


class TestBattlefield:
    @pytest.fixture(scope="class")
    def output(self):
        return _run("battlefield_messaging.py")

    def test_full_stack_ran(self, output):
        assert "onion:" in output
        assert "peeled layer" in output
        assert "field unit reads:" in output
        assert "traceable rate" in output


class TestAnonymityTradeoff:
    @pytest.fixture(scope="class")
    def output(self):
        return _run("anonymity_tradeoff.py")

    def test_design_table_and_recommendation(self, output):
        assert "delivery anonymity traceable" in output
        assert "recommended:" in output
        assert "takeaways" in output

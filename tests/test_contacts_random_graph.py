"""Tests for the Table II random contact-graph generator."""

import numpy as np
import pytest

from repro.contacts.random_graph import random_contact_graph


class TestRandomContactGraph:
    def test_default_matches_table_ii(self):
        graph = random_contact_graph(rng=0)
        assert graph.n == 100
        assert graph.density() == 1.0

    def test_rates_within_configured_band(self):
        graph = random_contact_graph(n=50, mean_intercontact_range=(10, 360), rng=1)
        upper = graph.rates[np.triu_indices(50, k=1)]
        means = 1.0 / upper
        assert means.min() >= 10.0
        assert means.max() <= 360.0

    def test_symmetric_zero_diagonal(self):
        graph = random_contact_graph(n=20, rng=2)
        assert np.allclose(graph.rates, graph.rates.T)
        assert np.all(np.diag(graph.rates) == 0)

    def test_seed_reproducible(self):
        a = random_contact_graph(n=30, rng=3)
        b = random_contact_graph(n=30, rng=3)
        assert np.array_equal(a.rates, b.rates)

    def test_different_seeds_differ(self):
        a = random_contact_graph(n=30, rng=3)
        b = random_contact_graph(n=30, rng=4)
        assert not np.array_equal(a.rates, b.rates)

    def test_density_below_one(self):
        graph = random_contact_graph(n=60, density=0.5, rng=5)
        assert 0.35 < graph.density() < 0.65

    def test_density_zero_rejected(self):
        with pytest.raises(ValueError, match="density"):
            random_contact_graph(n=10, density=0.0)

    def test_bad_range_order_rejected(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            random_contact_graph(n=10, mean_intercontact_range=(100, 10))

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            random_contact_graph(n=10, mean_intercontact_range=(0, 10))

    def test_mean_intercontact_distribution_is_uniformish(self):
        graph = random_contact_graph(n=80, mean_intercontact_range=(10, 360), rng=6)
        upper = graph.rates[np.triu_indices(80, k=1)]
        means = 1.0 / upper
        # Uniform(10, 360) has mean 185; loose statistical check.
        assert abs(means.mean() - 185.0) < 10.0

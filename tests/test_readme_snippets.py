"""The README's Python snippets must actually run.

Extracts every ```python fenced block from README.md and executes them in
one shared namespace (later blocks may use names from earlier ones) — a
cheap guard against documentation rot.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_readme_has_python_blocks(self):
        assert len(_python_blocks()) >= 2

    def test_all_python_blocks_execute(self, capsys):
        namespace: dict = {}
        for block in _python_blocks():
            exec(compile(block, str(README), "exec"), namespace)
        out = capsys.readouterr().out
        # the quickstart prints model values; all must be parseable floats
        lines = [line for line in out.strip().splitlines() if line]
        assert lines, "README snippets printed nothing"

    def test_quickstart_values_sane(self, capsys):
        namespace: dict = {}
        for block in _python_blocks():
            exec(compile(block, str(README), "exec"), namespace)
        out = capsys.readouterr().out.strip().splitlines()
        # first three prints are delivery, traceable, anonymity
        delivery = float(out[0])
        traceable = float(out[1])
        anonymity = float(out[2])
        assert 0.0 <= delivery <= 1.0
        assert 0.0 <= traceable <= 1.0
        assert 0.0 <= anonymity <= 1.0

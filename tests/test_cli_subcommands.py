"""Tests for the model/plan/simulate/trace CLI subcommands."""

import pytest

from repro.cli import main
from repro.contacts.traces import ContactTrace


class TestModel:
    def test_prints_all_four_models(self, capsys):
        assert main(["model", "--n", "50", "-g", "5", "-K", "3"]) == 0
        out = capsys.readouterr().out
        assert "delivery rate" in out
        assert "traceable rate" in out
        assert "path anonymity" in out
        assert "transmission bound" in out

    def test_copies_affect_bound(self, capsys):
        main(["model", "-K", "3", "-L", "4"])
        out = capsys.readouterr().out
        assert "20" in out  # (3+2)*4


class TestPlan:
    def test_deadline_mode(self, capsys):
        assert main(["plan", "--n", "50", "--target", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "deadline for 90% delivery" in out

    def test_copies_mode(self, capsys):
        assert main(
            ["plan", "--n", "50", "--target", "0.9", "--deadline", "120"]
        ) == 0
        out = capsys.readouterr().out
        assert "copies for 90% delivery" in out
        assert "L=" in out


class TestSimulate:
    @pytest.mark.parametrize(
        "protocol", ["single", "multi", "arden", "epidemic", "spray", "direct"]
    )
    def test_each_protocol_runs(self, capsys, protocol):
        code = main(
            [
                "simulate",
                "--protocol", protocol,
                "--n", "30",
                "--trials", "5",
                "--deadline", "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"protocol={protocol}" in out
        assert "delivery_rate=" in out


class TestTraceStats:
    def test_stats_output(self, capsys, tmp_path):
        trace = ContactTrace.from_rows(
            [(0, 1, 0, 10), (1, 2, 20, 30), (0, 1, 40, 50)]
        )
        path = tmp_path / "trace.txt"
        trace.dump(path)
        assert main(["trace", "stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "nodes:     3" in out
        assert "contacts:  3" in out
        assert "pairs met: 2" in out


class TestFigureChart:
    def test_chart_flag(self, capsys):
        assert main(["figure", "6", "--trials", "30", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out


class TestFigureSave:
    def test_save_json(self, capsys, tmp_path):
        from repro.experiments.persistence import load_figure

        path = tmp_path / "fig6.json"
        assert main(["figure", "6", "--trials", "30", "--save", str(path)]) == 0
        figure = load_figure(path)
        assert figure.figure_id == "Fig. 6"
        assert any(label.startswith("Analysis") for label in figure.labels)


class TestSimulateFaults:
    def test_churn_and_greyhole_flags(self, capsys):
        code = main(
            [
                "simulate",
                "--protocol", "single",
                "--n", "30",
                "--trials", "8",
                "--deadline", "400",
                "--availability", "0.7",
                "--drop-prob", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivery_rate=" in out
        assert "outcomes:" in out

    def test_recovery_flags(self, capsys):
        code = main(
            [
                "simulate",
                "--protocol", "multi",
                "--copies", "3",
                "--n", "30",
                "--trials", "8",
                "--deadline", "400",
                "--death-rate", "0.001",
                "--custody-timeout", "30",
            ]
        )
        assert code == 0
        assert "outcomes:" in capsys.readouterr().out

    def test_drop_prob_needs_onion_protocol(self, capsys):
        code = main(
            [
                "simulate",
                "--protocol", "epidemic",
                "--n", "30",
                "--trials", "5",
                "--deadline", "400",
                "--drop-prob", "0.5",
            ]
        )
        assert code == 2

    def test_faultless_output_unchanged(self, capsys):
        code = main(
            [
                "simulate",
                "--protocol", "single",
                "--n", "30",
                "--trials", "5",
                "--deadline", "400",
            ]
        )
        assert code == 0
        assert "outcomes:" not in capsys.readouterr().out


class TestFigureKeys:
    def test_list_includes_robustness_keys(self, capsys):
        # `list` must render every registered key, including the
        # extension/robustness string keys that broke naive sorting.
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "r1" in out
        assert "r2" in out

    def test_fig_prefix_alias_accepted(self, capsys):
        # "Fig. R1" and "r1" normalise to the same key; exercise the
        # converter without paying for a full figure run.
        from repro.cli import _figure_key

        assert _figure_key("Fig. R1") == "r1"
        assert _figure_key("fig4") == 4
        assert _figure_key("10") == 10

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "zz"])


class TestBackends:
    def test_lists_every_registered_backend(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("numpy", "numba", "cc", "cupy"):
            assert name in out
        # numpy is the always-available reference and the default.
        assert "(default)" in out

    def test_unavailable_backends_name_their_degradation(self, capsys, monkeypatch):
        # Poison numba so at least one backend is unavailable in every
        # environment, then check the degradation reason is printed.
        import sys

        monkeypatch.setitem(sys.modules, "numba", None)
        from repro.sim.backend import _reset_backend_caches

        _reset_backend_caches()
        try:
            assert main(["backends"]) == 0
            out = capsys.readouterr().out
            assert "degrades to numpy" in out
        finally:
            _reset_backend_caches()

    def test_env_override_reported(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert main(["backends"]) == 0
        assert "REPRO_KERNEL_BACKEND" in capsys.readouterr().out

"""Backend coverage of the security Monte Carlo ops.

PR 9 put the delivery kernels behind the :mod:`repro.sim.backend` seam;
this suite covers the adversary side: ``smallest_k_mask`` (the
compromise-set selection behind every fixed-count strategy) and the
fused ``security_scores`` pass (Eq. 1 run-length square sums + Eq. 20
exposure counts) must be byte-identical across numpy and every compiled
backend available here, for every built-in compromise model and mixed
fused grids; a compiled op that fails mid-run degrades to numpy without
changing outcomes; and the GPU (cupy) backend resolves to numpy with a
``KernelFallback`` event — never an error — wherever CuPy or a CUDA
device is absent, which includes every CI runner.
"""

import numpy as np
import pytest

from repro.adversary.compromise import make_compromise_model
from repro.adversary.kernel import (
    SecurityBatchKernel,
    SecuritySweepVariant,
    sample_security_block,
)
from repro.experiments.runners import (
    reference_node_weights,
    security_sweep_montecarlo,
)
from repro.sim.backend import (
    BACKENDS,
    CcBackend,
    CupyBackend,
    KernelBackend,
    _reset_backend_caches,
    available_backends,
    resolve_backend,
)
from repro.utils.resilience import KERNEL_FALLBACK

# Every backend that implements the security ops in compiled/GPU form
# and is actually usable here. cupy joins automatically on a CUDA box.
SECURITY_BACKENDS = [
    name
    for name in ("numba", "cc", "cupy")
    if BACKENDS[name].available()
]


def variant(onion_routers=3, copies=1, rate=0.1):
    return SecuritySweepVariant(
        label=f"K={onion_routers} L={copies} c={rate:g}",
        onion_routers=onion_routers,
        copies=copies,
        compromise_rate=rate,
    )


MIXED_GRID = (
    variant(3, 1, 0.10),
    variant(5, 3, 0.30),
    variant(2, 2, 0.02),
    variant(3, 5, 0.50),
)


def model_for(name, n, rate=0.1):
    weights = (
        reference_node_weights(n) if name in ("targeted", "stake") else None
    )
    return make_compromise_model(name, n, rate, weights=weights)


def score_with(backend, grid=MIXED_GRID, model_name="uniform", seed=23):
    block = sample_security_block(
        60,
        4,
        k_max=max(v.onion_routers for v in grid),
        l_max=max(v.copies for v in grid),
        trials=250,
        rng=np.random.default_rng(seed),
    )
    kernel = SecurityBatchKernel(
        block, model_for(model_name, 60), backend=backend
    )
    return kernel, kernel.score(grid)


def assert_scored_equal(a, b):
    assert len(a) == len(b)
    for (t1, d1), (t2, d2) in zip(a, b):
        assert np.array_equal(t1, t2)
        assert np.array_equal(d1, d2)


# ----------------------------------------------------------------------
# op-level byte identity
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not SECURITY_BACKENDS, reason="no compiled backend available"
)
@pytest.mark.parametrize("backend", SECURITY_BACKENDS)
class TestOpIdentity:
    def priorities(self):
        rng = np.random.default_rng(3)
        uniform = rng.random((300, 60))
        ranked = np.floor(rng.random((300, 60)) * 5) + rng.random((300, 60))
        protected = rng.random((300, 60))
        protected[:, :15] = np.inf
        return {"uniform": uniform, "ranked": ranked, "protected": protected}

    def test_smallest_k_mask_identical(self, backend):
        reference = resolve_backend("numpy")
        compiled = resolve_backend(backend)
        compiled.warmup()
        for priority in self.priorities().values():
            for count in (0, 1, 7, 20, 59, 60):
                expected = reference.smallest_k_mask(priority, count)
                got = compiled.smallest_k_mask(priority, count)
                assert got.dtype == np.bool_
                assert np.array_equal(expected, got)

    def test_smallest_k_selects_exactly_count(self, backend):
        priority = np.random.default_rng(9).random((100, 40))
        mask = resolve_backend(backend).smallest_k_mask(priority, 13)
        # Continuous priorities: ties are measure-zero, so the mask holds
        # exactly count cells per row on every backend.
        assert (mask.sum(axis=1) == 13).all()

    def test_security_scores_identical(self, backend):
        rng = np.random.default_rng(5)
        trials, n, k_max, l_max = 300, 60, 7, 5
        mask = rng.random((trials, n)) < 0.3
        sources = rng.integers(0, n, size=trials)
        members = rng.integers(0, n, size=(trials, k_max, l_max))
        reference = resolve_backend("numpy")
        compiled = resolve_backend(backend)
        for onion_routers, copies in ((1, 1), (3, 2), (7, 5), (5, 1)):
            expected = reference.security_scores(
                mask, sources, members, onion_routers, copies
            )
            got = compiled.security_scores(
                mask, sources, members, onion_routers, copies
            )
            for exp, act in zip(expected, got):
                assert act.dtype == np.int64
                assert np.array_equal(exp, act)


# ----------------------------------------------------------------------
# kernel-level byte identity across models and grids
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not SECURITY_BACKENDS, reason="no compiled backend available"
)
@pytest.mark.parametrize("backend", SECURITY_BACKENDS)
class TestKernelIdentity:
    @pytest.mark.parametrize(
        "model_name", ["uniform", "bernoulli", "targeted", "stake"]
    )
    def test_every_builtin_model_matches_numpy(self, backend, model_name):
        _, reference = score_with("numpy", model_name=model_name)
        _, compiled = score_with(backend, model_name=model_name)
        assert_scored_equal(reference, compiled)

    def test_mixed_grid_sweep_runner_identical(self, backend):
        runs = {}
        for name in ("numpy", backend):
            runs[name] = security_sweep_montecarlo(
                50, 3, MIXED_GRID, 200, rng=13, backend=name
            )
        assert runs["numpy"] == runs[backend]

    def test_stats_name_the_backend(self, backend):
        kernel, _ = score_with(backend)
        assert kernel.backend == backend
        assert kernel.stats["requested_backend"] == backend
        assert kernel.stats["variants_scored"] == len(MIXED_GRID)
        assert kernel.stats["backend_seconds"] >= 0.0
        assert kernel.backend_fallbacks == ()


# ----------------------------------------------------------------------
# kernel bookkeeping (backend-independent)
# ----------------------------------------------------------------------


class TestKernelBookkeeping:
    def test_anonymity_lookup_traffic_counted(self):
        kernel, _ = score_with("numpy")
        stats = kernel.stats
        # Four variants over two distinct eta values: every fetch is
        # counted, hits + misses == variants scored.
        assert (
            stats["anonymity_lookup_hits"] + stats["anonymity_lookup_misses"]
            == len(MIXED_GRID)
        )
        assert stats["anonymity_lookup_hits"] >= 1

    def test_mask_reused_across_route_shapes(self):
        grid = (
            variant(3, 1, 0.10),
            variant(5, 1, 0.10),
            variant(2, 1, 0.10),
            variant(3, 1, 0.30),
        )
        block = sample_security_block(
            60, 4, k_max=5, l_max=1, trials=250, rng=np.random.default_rng(23)
        )
        model = model_for("uniform", 60)
        kernel = SecurityBatchKernel(block, model, backend="numpy")
        scored = kernel.score(grid)
        # Two distinct rates → two mask derivations, two cache hits; the
        # reuse must not change any scores vs a fresh kernel per variant.
        assert kernel.stats["mask_cache_misses"] == 2
        assert kernel.stats["mask_cache_hits"] == 2
        for point, result in zip(grid, scored):
            fresh_kernel = SecurityBatchKernel(block, model, backend="numpy")
            fresh = fresh_kernel.score((point,))
            assert fresh_kernel.stats["mask_cache_hits"] == 0
            assert_scored_equal((result,), fresh)

    def test_mask_cache_stays_bounded(self):
        cap = SecurityBatchKernel.MASK_CACHE_SIZE
        grid = tuple(
            variant(2, 1, rate)
            for rate in np.linspace(0.01, 0.6, cap + 5)
        )
        kernel, _ = score_with("numpy", grid=grid)
        assert len(kernel._mask_cache) == cap
        assert kernel.stats["mask_cache_misses"] == cap + 5


# ----------------------------------------------------------------------
# degradation: mid-run op failure and the GPU-less cupy resolve
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    not CcBackend.available(), reason="cc backend needs a C compiler"
)
class TestMidRunDegradation:
    @pytest.mark.parametrize("op", ["smallest_k_mask", "security_scores"])
    def test_security_op_failure_degrades_and_matches(self, monkeypatch, op):
        _, reference = score_with("numpy")

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected security-op failure")

        monkeypatch.setattr(CcBackend, op, explode)
        kernel, degraded = score_with("cc")

        assert kernel.backend == "numpy"
        assert kernel.stats["backend"] == "numpy"
        assert kernel.backend_fallbacks
        assert op in kernel.backend_fallbacks[0]
        assert "injected security-op failure" in kernel.backend_fallbacks[0]
        events = kernel.fallback_events
        assert events and events[0].kind == KERNEL_FALLBACK
        assert events[0].resolution == "degraded"
        assert_scored_equal(reference, degraded)


class TestCupyDegradation:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        _reset_backend_caches()
        yield
        _reset_backend_caches()

    def test_cupy_registered(self):
        assert BACKENDS["cupy"] is CupyBackend
        assert issubclass(CupyBackend, KernelBackend)

    @pytest.mark.skipif(
        CupyBackend.available(), reason="a CUDA device is present"
    )
    def test_gpu_less_environment_degrades_with_event(self):
        # The acceptance contract: requesting cupy on a GPU-less box is a
        # recorded degradation, not an error.
        assert "cupy" not in available_backends()
        assert CupyBackend.unavailable_reason()

        seen = []
        backend = resolve_backend(
            "cupy", on_fallback=lambda name, error: seen.append((name, error))
        )
        assert backend.name == "numpy"
        assert [name for name, _ in seen] == ["cupy"]

        kernel, _ = score_with("cupy")
        assert kernel.backend == "numpy"
        assert kernel.stats["requested_backend"] == "cupy"
        events = kernel.fallback_events
        assert events and events[0].kind == KERNEL_FALLBACK
        assert "cupy" in events[0].detail

    @pytest.mark.skipif(
        not CupyBackend.available(), reason="cupy needs a CUDA device"
    )
    def test_cupy_scores_match_numpy(self):
        _, reference = score_with("numpy")
        _, gpu = score_with("cupy")
        assert_scored_equal(reference, gpu)

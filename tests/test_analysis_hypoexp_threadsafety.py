"""Thread-safety of the Hypoexponential instance caches.

Parallel deadline sweeps share one :class:`Hypoexponential` per route
across worker threads, so the lazily-populated caches (distinct-rate
predicate, Eq. 5 coefficients, uniformized DTMC) must tolerate
concurrent first use. The contract is single-assignment publication:
every cache is computed into a local and installed with one store, so a
concurrent reader observes either ``None`` (and recomputes) or the
final value — never a provisional intermediate.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.hypoexponential import Hypoexponential

THREADS = 8
ROUNDS = 25


def _hammer(target, threads=THREADS):
    """Run ``target`` concurrently, releasing all threads on one barrier."""
    barrier = threading.Barrier(threads)
    failures = []

    def runner():
        barrier.wait()
        try:
            target()
        except Exception as error:  # pragma: no cover - only on regression
            failures.append(error)

    pool = [threading.Thread(target=runner) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if failures:
        raise failures[0]


def test_concurrent_cdf_matches_serial():
    grid = np.linspace(0.0, 30.0, 101)
    for _ in range(ROUNDS):
        shared = Hypoexponential([0.5, 0.9, 1.4, 2.2])
        expected = Hypoexponential([0.5, 0.9, 1.4, 2.2]).cdf(grid)
        results = []
        lock = threading.Lock()

        def sweep():
            values = shared.cdf(grid)
            with lock:
                results.append(values)

        _hammer(sweep)
        assert len(results) == THREADS
        for values in results:
            np.testing.assert_array_equal(values, expected)


def test_concurrent_pdf_matches_serial():
    grid = np.linspace(0.01, 20.0, 101)
    for _ in range(ROUNDS):
        shared = Hypoexponential([1.0, 1.7, 3.1])
        expected = Hypoexponential([1.0, 1.7, 3.1]).pdf(grid)
        results = []
        lock = threading.Lock()

        def sweep():
            values = shared.pdf(grid)
            with lock:
                results.append(values)

        _hammer(sweep)
        for values in results:
            np.testing.assert_array_equal(values, expected)


def test_concurrent_distinct_rate_predicate_near_coincident():
    # Rates separated by less than the relative-gap tolerance: the
    # predicate must come out False in every thread. The historical race
    # installed a provisional True before scanning the gaps, so a
    # concurrent reader could observe the wrong answer and take the
    # (invalid) closed-form path.
    rates = [1.0, 1.0 + 1e-7, 2.0]
    for _ in range(ROUNDS):
        shared = Hypoexponential(rates)
        observed = []
        lock = threading.Lock()

        def probe():
            value = shared.has_distinct_rates()
            with lock:
                observed.append(value)

        _hammer(probe)
        assert observed == [False] * THREADS


def test_concurrent_coefficients_single_value():
    for _ in range(ROUNDS):
        shared = Hypoexponential([0.3, 0.8, 1.9, 4.2])
        seen = []
        lock = threading.Lock()

        def fetch():
            coeffs = shared.coefficients()
            with lock:
                seen.append(coeffs)

        _hammer(fetch)
        for coeffs in seen:
            np.testing.assert_array_equal(coeffs, seen[0])
        assert seen[0] == pytest.approx(seen[0])  # finite, no NaN leak
        assert float(np.sum(seen[0])) == pytest.approx(1.0)


def test_concurrent_mixed_methods_agree():
    # Closed-form and matrix evaluation hammered together on one shared
    # instance: both caches populate under contention and both paths
    # agree with each other (the matrix path is the ground truth).
    grid = np.linspace(0.0, 12.0, 41)
    shared = Hypoexponential([0.7, 1.3, 2.9])
    matrix = Hypoexponential([0.7, 1.3, 2.9], method="matrix")
    expected = matrix.cdf(grid)
    results = []
    lock = threading.Lock()

    def closed_form():
        values = shared.cdf(grid)
        with lock:
            results.append(values)

    def matrix_form():
        values = matrix.cdf(grid)
        with lock:
            results.append(values)

    barrier = threading.Barrier(THREADS)

    def runner(target):
        barrier.wait()
        target()

    pool = [
        threading.Thread(
            target=runner, args=(closed_form if i % 2 else matrix_form,)
        )
        for i in range(THREADS)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert len(results) == THREADS
    for values in results:
        np.testing.assert_allclose(values, expected, atol=1e-9)

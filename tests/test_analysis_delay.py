"""Tests for path-delay statistics and planning helpers."""

import math

import pytest

from repro.analysis.delay import (
    copies_for_deadline,
    deadline_for_target,
    delay_moments,
    delay_quantile,
)
from repro.analysis.hypoexponential import Hypoexponential
from repro.contacts.graph import ContactGraph

RATES = [0.05, 0.05, 0.05]
GROUPS = [(5, 6, 7, 8, 9), (10, 11, 12, 13, 14)]


@pytest.fixture
def graph():
    return ContactGraph.complete(20, 0.01)


class TestMoments:
    def test_mean_is_sum_of_inverse_rates(self):
        moments = delay_moments(RATES)
        assert moments["mean"] == pytest.approx(60.0)

    def test_variance(self):
        moments = delay_moments(RATES)
        assert moments["var"] == pytest.approx(3 * 400.0)

    def test_copies_scale_mean(self):
        single = delay_moments(RATES)["mean"]
        triple = delay_moments(RATES, copies=3)["mean"]
        assert triple == pytest.approx(single / 3)

    def test_cv_below_one_for_multi_hop(self):
        # Erlang CV = 1/sqrt(k) < 1
        assert delay_moments(RATES)["cv"] == pytest.approx(1 / math.sqrt(3))


class TestQuantile:
    def test_quantile_inverts_cdf(self):
        for q in (0.1, 0.5, 0.9, 0.99):
            t = delay_quantile(RATES, q)
            assert Hypoexponential(RATES).cdf(t) == pytest.approx(q, abs=1e-6)

    def test_quantile_monotone(self):
        values = [delay_quantile(RATES, q) for q in (0.1, 0.5, 0.9)]
        assert values == sorted(values)

    def test_zero_quantile(self):
        assert delay_quantile(RATES, 0.0) == 0.0

    def test_one_rejected(self):
        with pytest.raises(ValueError, match="unbounded"):
            delay_quantile(RATES, 1.0)

    def test_single_stage_closed_form(self):
        # exponential: q-quantile = -ln(1-q)/λ
        t = delay_quantile([0.2], 0.5)
        assert t == pytest.approx(math.log(2) / 0.2, rel=1e-6)


class TestPlanning:
    def test_deadline_for_target(self, graph):
        deadline = deadline_for_target(graph, 0, GROUPS, 19, 0.95)
        from repro.analysis.delivery import delivery_rate

        assert delivery_rate(graph, 0, GROUPS, 19, deadline) == pytest.approx(
            0.95, abs=1e-6
        )

    def test_tighter_target_needs_longer_deadline(self, graph):
        d90 = deadline_for_target(graph, 0, GROUPS, 19, 0.90)
        d99 = deadline_for_target(graph, 0, GROUPS, 19, 0.99)
        assert d99 > d90

    def test_copies_for_deadline(self, graph):
        tight = deadline_for_target(graph, 0, GROUPS, 19, 0.95)
        copies = copies_for_deadline(graph, 0, GROUPS, 19, tight / 3, 0.95)
        assert copies > 1
        # and the answer actually meets the target
        from repro.analysis.delivery import delivery_rate_multicopy

        achieved = delivery_rate_multicopy(
            graph, 0, GROUPS, 19, tight / 3, copies=copies
        )
        assert achieved >= 0.95

    def test_copies_minimal(self, graph):
        tight = deadline_for_target(graph, 0, GROUPS, 19, 0.95)
        copies = copies_for_deadline(graph, 0, GROUPS, 19, tight / 3, 0.95)
        if copies > 1:
            from repro.analysis.delivery import delivery_rate_multicopy

            below = delivery_rate_multicopy(
                graph, 0, GROUPS, 19, tight / 3, copies=copies - 1
            )
            assert below < 0.95

    def test_unreachable_target_raises(self, graph):
        with pytest.raises(ValueError, match="cannot reach"):
            copies_for_deadline(graph, 0, GROUPS, 19, 0.01, 0.99, max_copies=4)

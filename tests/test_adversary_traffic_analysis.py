"""Tests for the passive traffic-analysis adversary."""

import pytest

from repro.adversary.traffic_analysis import (
    ChainLinkingAttack,
    InferredFlow,
    TrafficLog,
    TrafficTruth,
    endpoint_exposure,
    linkability,
)
from repro.sim.metrics import DeliveryOutcome


class TestTrafficLog:
    def test_sorted_and_merged(self):
        a = DeliveryOutcome(transfers=[(2.0, 0, 1)])
        b = DeliveryOutcome(transfers=[(1.0, 5, 6)])
        log = TrafficLog.from_outcomes([a, b])
        assert log.transmissions == ((1.0, 5, 6), (2.0, 0, 1))
        assert len(log) == 2


class TestChainLinking:
    def test_single_quiet_chain_fully_recovered(self):
        """With no mixing traffic, chain linking is trivial — the threat
        model the paper's anonymity mechanisms are built against."""
        log = TrafficLog([(1.0, 0, 5), (2.0, 5, 8), (3.0, 8, 9)])
        flows = ChainLinkingAttack(max_gap=10.0).infer_flows(log)
        assert len(flows) == 1
        assert flows[0].source == 0
        assert flows[0].destination == 9
        assert flows[0].hops == (0, 5, 8, 9)

    def test_gap_splits_chains(self):
        log = TrafficLog([(1.0, 0, 5), (100.0, 5, 9)])
        flows = ChainLinkingAttack(max_gap=10.0).infer_flows(log)
        pairs = {(f.source, f.destination) for f in flows}
        assert (0, 9) not in pairs
        assert (0, 5) in pairs

    def test_two_disjoint_chains_separate(self):
        log = TrafficLog(
            [(1.0, 0, 5), (1.5, 10, 15), (2.0, 5, 9), (2.5, 15, 19)]
        )
        flows = ChainLinkingAttack(max_gap=10.0).infer_flows(log)
        pairs = {(f.source, f.destination) for f in flows}
        assert pairs == {(0, 9), (10, 19)}

    def test_crossing_chains_confuse_the_attack(self):
        """Two chains sharing a relay node can be mislinked — mixing works."""
        log = TrafficLog(
            [
                (1.0, 0, 5),
                (1.2, 10, 5),  # second message also lands on relay 5
                (2.0, 5, 9),
                (2.2, 5, 19),
            ]
        )
        flows = ChainLinkingAttack(max_gap=10.0).infer_flows(log)
        pairs = {(f.source, f.destination) for f in flows}
        truths = {(0, 9), (10, 19)}
        # at most one of the two true pairs survives the ambiguity
        assert len(pairs & truths) <= 1

    def test_bad_gap(self):
        with pytest.raises(ValueError, match="max_gap"):
            ChainLinkingAttack(max_gap=0.0)


class TestMetrics:
    def _flow(self, source, destination):
        return InferredFlow(
            source=source,
            destination=destination,
            hops=(source, destination),
            start_time=0.0,
            end_time=1.0,
        )

    def test_linkability_counts_exact_pairs(self):
        flows = [self._flow(0, 9), self._flow(3, 4)]
        truths = [TrafficTruth(0, 9), TrafficTruth(5, 6)]
        assert linkability(flows, truths) == 0.5

    def test_linkability_multiset(self):
        flows = [self._flow(0, 9)]
        truths = [TrafficTruth(0, 9), TrafficTruth(0, 9)]
        assert linkability(flows, truths) == 0.5

    def test_endpoint_exposure(self):
        flows = [self._flow(0, 7)]
        truths = [TrafficTruth(0, 9)]
        exposure = endpoint_exposure(flows, truths)
        assert exposure["source_exposure"] == 1.0
        assert exposure["destination_exposure"] == 0.0

    def test_empty_truths_rejected(self):
        with pytest.raises(ValueError):
            linkability([], [])


class TestEndToEnd:
    def test_quiet_onion_network_is_fully_linkable(self):
        """One onion message alone: traffic analysis recovers everything —
        anonymity needs cover traffic, not just encryption."""
        from repro.contacts.graph import ContactGraph
        from repro.contacts.events import ExponentialContactProcess
        from repro.core.onion_groups import OnionGroupDirectory
        from repro.core.single_copy import SingleCopySession
        from repro.sim.engine import SimulationEngine
        from repro.sim.message import Message

        graph = ContactGraph.complete(20, 0.05)
        directory = OnionGroupDirectory(20, 5)
        route = directory.select_route(0, 19, 2, rng=1)
        message = Message(0, 19, 0.0, 5000.0)
        session = SingleCopySession(message, route)
        engine = SimulationEngine(
            ExponentialContactProcess(graph, rng=2), horizon=5000.0
        )
        engine.add_session(session)
        engine.run()
        outcome = session.outcome()
        assert outcome.delivered

        log = TrafficLog.from_outcomes([outcome])
        flows = ChainLinkingAttack(max_gap=5000.0).infer_flows(log)
        assert linkability(flows, [TrafficTruth(0, 19)]) == 1.0

    def test_concurrent_traffic_reduces_linkability(self):
        """Under a busy workload the same attack links far fewer flows."""
        from repro.contacts.events import ExponentialContactProcess
        from repro.contacts.graph import ContactGraph
        from repro.core.onion_groups import OnionGroupDirectory
        from repro.core.single_copy import SingleCopySession
        from repro.sim.engine import SimulationEngine
        from repro.sim.workload import PoissonWorkload
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(3)
        graph = ContactGraph.complete(30, 0.05)
        directory = OnionGroupDirectory(30, 5, rng=rng)
        workload = PoissonWorkload(
            arrival_rate=0.2, message_deadline=300.0, duration=300.0
        )
        messages = workload.generate_messages(30, rng)
        engine = SimulationEngine(
            ExponentialContactProcess(graph, rng=rng), horizon=600.0
        )
        sessions = []
        for message in messages:
            route = directory.select_route(
                message.source, message.destination, 3, rng=rng
            )
            sessions.append(engine.add_session(SingleCopySession(message, route)))
        engine.run()

        outcomes = [session.outcome() for session in sessions]
        delivered = [
            (message, outcome)
            for message, outcome in zip(messages, outcomes)
            if outcome.delivered
        ]
        assert len(delivered) >= 10, "need enough traffic to measure mixing"
        truths = [
            TrafficTruth(message.source, message.destination)
            for message, _ in delivered
        ]
        log = TrafficLog.from_outcomes([outcome for _, outcome in delivered])
        flows = ChainLinkingAttack(max_gap=300.0).infer_flows(log)
        mixed = linkability(flows, truths)

        # baseline: each message observed alone is perfectly linkable
        alone = sum(
            linkability(
                ChainLinkingAttack(max_gap=300.0).infer_flows(
                    TrafficLog.from_outcomes([outcome])
                ),
                [TrafficTruth(message.source, message.destination)],
            )
            for message, outcome in delivered
        ) / len(delivered)
        assert alone == 1.0
        assert mixed < alone

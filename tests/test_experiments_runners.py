"""Tests for the experiment runner machinery."""

import logging

import numpy as np
import pytest

from repro.adversary.dropping import DroppingRelays
from repro.contacts.graph import ContactGraph
from repro.contacts.synthetic import cambridge_like_trace
from repro.contacts.traces import ContactRecord, ContactTrace
from repro.core.route import OnionRoute
from repro.experiments.runners import (
    analysis_delivery_curve,
    run_faulty_graph_batch,
    estimate_active_span,
    run_random_graph_batch,
    run_trace_batch,
    sample_copy_paths,
    sample_endpoints,
    security_montecarlo,
    select_overlapping_route,
    simulated_delivery_curve,
    trace_contact_graph,
)
from repro.faults.failstop import FailStopSchedule
from repro.faults.churn import NodeChurnSchedule
from repro.faults.recovery import RecoveryPolicy
from repro.utils.rng import ensure_rng


class TestSampleEndpoints:
    def test_distinct(self):
        rng = ensure_rng(0)
        for _ in range(50):
            source, destination = sample_endpoints(10, rng)
            assert source != destination
            assert 0 <= source < 10 and 0 <= destination < 10


class TestSelectOverlappingRoute:
    def test_excludes_endpoints(self):
        rng = ensure_rng(1)
        route = select_overlapping_route(12, 0, 11, 3, 10, rng)
        for members in route.groups:
            assert 0 not in members
            assert 11 not in members
            assert len(members) == 10

    def test_groups_may_overlap(self):
        rng = ensure_rng(2)
        route = select_overlapping_route(12, 0, 11, 3, 10, rng)
        # 10 eligible nodes, groups of 10: all three groups identical
        assert route.groups[0] == route.groups[1] == route.groups[2]

    def test_too_large_group_rejected(self):
        rng = ensure_rng(3)
        with pytest.raises(ValueError, match="eligible"):
            select_overlapping_route(5, 0, 4, 2, 4, rng)


class TestRandomGraphBatch:
    def test_batch_shape_and_outcomes(self):
        graph = ContactGraph.complete(30, 0.05)
        batch = run_random_graph_batch(
            graph, group_size=5, onion_routers=2, copies=1,
            horizon=500.0, sessions=10, rng=0,
        )
        assert len(batch) == 10
        for route, outcome in batch:
            assert isinstance(route, OnionRoute)
            if outcome.delivered:
                assert outcome.delay <= 500.0
                assert outcome.transmissions == route.eta

    def test_multicopy_batch_costs_more(self):
        graph = ContactGraph.complete(30, 0.05)
        single = run_random_graph_batch(
            graph, 5, 2, copies=1, horizon=2000.0, sessions=15, rng=1
        )
        multi = run_random_graph_batch(
            graph, 5, 2, copies=3, horizon=2000.0, sessions=15, rng=1
        )
        mean = lambda batch: np.mean([o.transmissions for _, o in batch])
        assert mean(multi) > mean(single)


class TestDeliveryCurves:
    def test_analysis_curve_monotone(self):
        graph = ContactGraph.complete(30, 0.02)
        batch = run_random_graph_batch(graph, 5, 2, 1, 400.0, 5, rng=2)
        routes = [route for route, _ in batch]
        curve = analysis_delivery_curve(graph, routes, [50.0, 150.0, 400.0])
        values = [y for _, y in curve]
        assert values == sorted(values)
        assert all(0 <= y <= 1 for y in values)

    def test_unreachable_route_contributes_zero(self):
        rates = np.zeros((4, 4))
        rates[0, 1] = rates[1, 0] = 0.5
        graph = ContactGraph(rates)
        route = OnionRoute(source=0, destination=3, group_ids=(0,), groups=((1,),))
        curve = analysis_delivery_curve(graph, [route], [100.0])
        assert curve == [(100.0, 0.0)]

    def test_simulated_curve_from_outcomes(self):
        graph = ContactGraph.complete(30, 0.05)
        batch = run_random_graph_batch(graph, 5, 2, 1, 800.0, 20, rng=3)
        outcomes = [o for _, o in batch]
        curve = simulated_delivery_curve(outcomes, [100.0, 800.0])
        assert curve[0][1] <= curve[1][1]


class TestSecurityMonteCarlo:
    def test_zero_compromise(self):
        traceable, anonymity = security_montecarlo(
            100, 5, 3, copies=1, compromise_rate=0.0, trials=50, rng=0
        )
        assert traceable == 0.0
        assert anonymity == pytest.approx(1.0)

    def test_matches_models_at_moderate_rate(self):
        from repro.analysis.anonymity import path_anonymity
        from repro.analysis.traceable import traceable_rate_model

        traceable, anonymity = security_montecarlo(
            100, 5, 3, copies=1, compromise_rate=0.2, trials=4000, rng=1
        )
        assert traceable == pytest.approx(traceable_rate_model(4, 0.2), abs=0.02)
        assert anonymity == pytest.approx(
            path_anonymity(100, 4, 5, 0.2, form="exact"), abs=0.02
        )

    def test_multicopy_lowers_anonymity(self):
        _, single = security_montecarlo(100, 5, 3, 1, 0.2, trials=1500, rng=2)
        _, multi = security_montecarlo(100, 5, 3, 5, 0.2, trials=1500, rng=2)
        assert multi < single

    def test_overlapping_mode(self):
        traceable, anonymity = security_montecarlo(
            12, 10, 3, copies=1, compromise_rate=0.25, trials=300, rng=3,
            overlapping=True,
        )
        assert 0.0 < traceable < 1.0
        assert 0.0 < anonymity <= 1.0


class TestSampleCopyPaths:
    def test_shapes(self):
        route = OnionRoute(
            source=0, destination=9, group_ids=(0, 1), groups=((1, 2, 3), (4, 5, 6))
        )
        paths = sample_copy_paths(route, 3, ensure_rng(0))
        assert len(paths) == 3
        for path in paths:
            assert len(path) == route.eta
            assert path[0] == 0

    def test_copies_use_distinct_members_when_possible(self):
        route = OnionRoute(
            source=0, destination=9, group_ids=(0,), groups=((1, 2, 3),)
        )
        paths = sample_copy_paths(route, 3, ensure_rng(1))
        members = [path[1] for path in paths]
        assert sorted(members) == [1, 2, 3]

    def test_wraps_when_copies_exceed_group(self):
        route = OnionRoute(source=0, destination=9, group_ids=(0,), groups=((1, 2),))
        paths = sample_copy_paths(route, 5, ensure_rng(2))
        assert {path[1] for path in paths} == {1, 2}


class TestTraceBatch:
    def test_trace_pipeline(self):
        trace = cambridge_like_trace(days=2, rng=0)
        batch = run_trace_batch(
            trace, group_size=10, onion_routers=3, copies=1,
            deadline=3600.0, sessions=5, rng=0, overlapping=True,
        )
        assert len(batch) == 5
        for route, outcome in batch:
            assert route.eta == 4
            if outcome.delivered:
                assert outcome.delay <= 3600.0

    def test_trace_graph_and_active_span(self):
        trace = cambridge_like_trace(days=2, rng=1)
        span = estimate_active_span(trace)
        assert 0 < span <= trace.normalized().end + 3600
        graph = trace_contact_graph(trace, span)
        assert graph.n == 12
        assert graph.mean_rate() > 0


class TestFaultyGraphBatch:
    def _graph(self):
        return ContactGraph.complete(20, 0.05)

    def test_faultless_matches_plain_batch_shape(self):
        batch = run_faulty_graph_batch(
            self._graph(), group_size=3, onion_routers=2, copies=1,
            horizon=400.0, sessions=10, rng=5,
        )
        assert len(batch) == 10
        for route, outcome in batch:
            assert route.eta == 3
            assert outcome.status in {"delivered", "pending", "expired"}

    def test_churn_reduces_delivery(self):
        kwargs = dict(
            group_size=3, onion_routers=2, copies=1,
            horizon=300.0, sessions=40,
        )
        plain = run_faulty_graph_batch(self._graph(), rng=6, **kwargs)
        churned = run_faulty_graph_batch(
            self._graph(), rng=6,
            churn=NodeChurnSchedule.from_availability(20, 0.3, 20.0, rng=7),
            **kwargs,
        )
        delivered = lambda batch: sum(o.delivered for _, o in batch)
        assert delivered(churned) < delivered(plain)

    def test_blackhole_relays_drop_sessions(self):
        relays = DroppingRelays.blackholes(set(range(20)))
        batch = run_faulty_graph_batch(
            self._graph(), group_size=3, onion_routers=2, copies=1,
            horizon=400.0, sessions=15, rng=8, relays=relays,
        )
        statuses = {outcome.status for _, outcome in batch}
        assert "dropped" in statuses
        assert not any(outcome.delivered for _, outcome in batch)

    def test_recovery_with_failstop_runs(self):
        batch = run_faulty_graph_batch(
            self._graph(), group_size=3, onion_routers=2, copies=2,
            horizon=400.0, sessions=15, rng=9,
            failstop=FailStopSchedule(20, death_rate=0.002, rng=10),
            relays=DroppingRelays.sample(20, 0.2, 0.5, rng=11),
            recovery=RecoveryPolicy(custody_timeout=30.0, max_retries=2),
        )
        assert len(batch) == 15
        for _, outcome in batch:
            assert outcome.status in {
                "delivered", "pending", "expired", "dropped", "failed",
            }


class TestSparseTrace:
    def test_partial_batch_with_warning(self, caplog):
        # Only nodes 0 and 1 ever contact in the first half of the trace,
        # so almost no sampled source can be placed: the batch must come
        # back partial instead of raising.
        records = [ContactRecord(0, 1, 0.0, 1.0)]
        for i in range(2, 300, 2):
            records.append(ContactRecord(i, i + 1, 900.0 + i, 905.0 + i))
        trace = ContactTrace(records)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.runners"):
            batch = run_trace_batch(
                trace, group_size=5, onion_routers=2, copies=1,
                deadline=100.0, sessions=8, rng=3, overlapping=True,
            )
        assert len(batch) < 8  # partial, not empty-handed ...
        assert any("trace too sparse" in r.message for r in caplog.records)
        for route, outcome in batch:  # ... and the placed sessions are real
            assert route.eta == 3

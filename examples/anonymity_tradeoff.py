#!/usr/bin/env python
"""Explore the performance/anonymity trade-off space (K, g, L).

The paper's central practical question: how do the number of onion routers
``K``, the onion group size ``g``, and the copy count ``L`` trade delivery
performance against security? This example sweeps the design space with the
analytical models (instant — no simulation needed) and prints a design
table a deployment could pick an operating point from.

Run:  python examples/anonymity_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    OnionGroupDirectory,
    delivery_rate_multicopy,
    multi_copy_cost_bound,
    path_anonymity_multicopy,
    random_contact_graph,
    traceable_rate_model,
)

SEED = 33
N = 100
DEADLINE = 720.0  # minutes
COMPROMISE_RATE = 0.10
ROUTES_PER_POINT = 30  # average the delivery model over random routes


def mean_delivery(graph, group_size, onion_routers, copies, rng) -> float:
    """Average the Eq. 7 model over random routes on the given graph."""
    directory = OnionGroupDirectory(N, group_size, rng=rng)
    values = []
    for _ in range(ROUTES_PER_POINT):
        source, destination = rng.choice(N, size=2, replace=False)
        route = directory.select_route(
            int(source), int(destination), onion_routers, rng=rng
        )
        values.append(
            delivery_rate_multicopy(
                graph, route.source, route.groups, route.destination,
                DEADLINE, copies=copies,
            )
        )
    return float(np.mean(values))


def main() -> None:
    rng = np.random.default_rng(SEED)
    graph = random_contact_graph(n=N, rng=rng)
    print(f"design space at T={DEADLINE:g} min, c/n={COMPROMISE_RATE:.0%}, "
          f"n={N} (models only)\n")
    header = (f"{'K':>3} {'g':>3} {'L':>3} | {'delivery':>8} "
              f"{'anonymity':>9} {'traceable':>9} {'cost<=':>6}")
    print(header)
    print("-" * len(header))

    rows = []
    for onion_routers in (2, 3, 5):
        for group_size in (2, 5, 10):
            for copies in (1, 3):
                delivery = mean_delivery(
                    graph, group_size, onion_routers, copies, rng
                )
                eta = onion_routers + 1
                anonymity = path_anonymity_multicopy(
                    N, eta, group_size, COMPROMISE_RATE, copies
                )
                traceable = traceable_rate_model(eta, COMPROMISE_RATE)
                cost = multi_copy_cost_bound(onion_routers, copies)
                rows.append(
                    (onion_routers, group_size, copies, delivery, anonymity,
                     traceable, cost)
                )
                print(f"{onion_routers:>3} {group_size:>3} {copies:>3} | "
                      f"{delivery:>8.3f} {anonymity:>9.3f} "
                      f"{traceable:>9.4f} {cost:>6}")

    # pick the dominant operating points: best anonymity among the
    # configurations that still deliver 95% of messages in time
    viable = [row for row in rows if row[3] >= 0.95]
    if viable:
        best = max(viable, key=lambda row: row[4])
        print(f"\nrecommended: K={best[0]}, g={best[1]}, L={best[2]} — "
              f"delivery {best[3]:.3f}, anonymity {best[4]:.3f}, "
              f"cost <= {best[6]} transmissions")
    print("\ntakeaways (the paper's Figs. 4-13 in one table):")
    print(" * delivery falls with K, rises with g and L")
    print(" * anonymity rises with g, falls with L; traceable rate falls with K")
    print(" * cost grows as (K+2)L — anonymity is paid for in transmissions")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Adaptive deployment: model-driven configuration, then live operation.

A deployment workflow built entirely from the library's pieces:

1. **Plan** — search the (K, g, L) space with the analytical models for
   the most anonymous configuration that still meets a delivery SLO under
   a transmission budget (`repro.analysis.optimization`).
2. **Provision** — stand up onion groups with epoch-keyed membership
   (`repro.core.group_management`); churn some members and show the
   rekeying in action.
3. **Operate** — run a Poisson message workload with the chosen
   configuration and rate-aware route selection, and verify the SLO held.
4. **Audit** — replay the adversary: node compromise (traceable rate) and
   global traffic analysis (linkability).

Run:  python examples/adaptive_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro.adversary import (
    ChainLinkingAttack,
    CompromiseModel,
    PathTracer,
    TrafficLog,
    TrafficTruth,
    linkability,
)
from repro.analysis.optimization import best_configuration
from repro.contacts.random_graph import random_contact_graph
from repro.contacts.events import ExponentialContactProcess
from repro.core.group_management import ManagedGroupDirectory
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.route_selection import RateAwareSelector
from repro.core.single_copy import SingleCopySession
from repro.core.multi_copy import MultiCopySession
from repro.sim.engine import SimulationEngine
from repro.sim.workload import PoissonWorkload
from repro.utils.rng import ensure_rng

SEED = 99
N = 100
DEADLINE = 480.0  # minutes: the SLO window
DELIVERY_TARGET = 0.90
COST_BUDGET = 16
COMPROMISE_RATE = 0.10


def main() -> None:
    rng = ensure_rng(SEED)
    graph = random_contact_graph(n=N, rng=rng)

    # ------------------------------------------------------------------
    # 1. plan
    # ------------------------------------------------------------------
    best = best_configuration(
        graph,
        deadline=DEADLINE,
        compromise_rate=COMPROMISE_RATE,
        delivery_target=DELIVERY_TARGET,
        cost_budget=COST_BUDGET,
        routes_per_point=15,
        rng=rng,
    )
    print(f"planned configuration: K={best.onion_routers} "
          f"g={best.group_size} L={best.copies}")
    print(f"  model: delivery={best.delivery:.3f} anonymity={best.anonymity:.3f} "
          f"traceable={best.traceable:.4f} cost<={best.cost_bound}")

    # ------------------------------------------------------------------
    # 2. provision (epoch-keyed groups + churn)
    # ------------------------------------------------------------------
    group_count = N // best.group_size
    managed = ManagedGroupDirectory(b"deployment-master", group_count)
    order = list(range(N))
    rng.shuffle(order)
    for rank, node in enumerate(order):
        managed.join(node, rank % group_count)
    # churn: two nodes rotate out (forcing rekeys), one rejoins elsewhere
    leavers = [order[0], order[1]]
    for node in leavers:
        managed.leave(node, managed.group_of(node))
    managed.join(leavers[0], 0)
    epochs = [managed.epoch(g) for g in range(min(4, group_count))]
    print(f"  provisioned {group_count} groups; epochs after churn: {epochs} "
          f"(departed members cannot peel current-epoch onions)")

    # ------------------------------------------------------------------
    # 3. operate
    # ------------------------------------------------------------------
    directory = OnionGroupDirectory(N, best.group_size, rng=rng)
    selector = RateAwareSelector(
        directory, graph, reference_deadline=DEADLINE, candidates=6, rng=rng
    )
    workload = PoissonWorkload(
        arrival_rate=1 / 30.0, message_deadline=DEADLINE, duration=720.0
    )
    messages = workload.generate_messages(N, rng)
    engine = SimulationEngine(
        ExponentialContactProcess(graph, rng=rng),
        horizon=720.0 + DEADLINE,
    )
    sessions = []
    for message in messages:
        route = selector.select(
            message.source, message.destination, best.onion_routers
        )
        if best.copies == 1:
            session = SingleCopySession(message, route)
        else:
            session = MultiCopySession(message, route, copies=best.copies)
        engine.add_session(session)
        sessions.append(session)
    engine.run()
    outcomes = [session.outcome() for session in sessions]
    delivery = float(np.mean([o.delivered for o in outcomes]))
    cost = float(np.mean([o.transmissions for o in outcomes]))
    print(f"  operated: {len(messages)} messages, delivery={delivery:.3f} "
          f"(SLO {DELIVERY_TARGET:.0%}: {'MET' if delivery >= DELIVERY_TARGET else 'MISSED'}), "
          f"cost={cost:.1f}/msg (budget {COST_BUDGET})")

    # ------------------------------------------------------------------
    # 4. audit
    # ------------------------------------------------------------------
    compromised = CompromiseModel(N, COMPROMISE_RATE).sample_fixed_count(rng=rng)
    tracer = PathTracer(compromised)
    delivered = [o for o in outcomes if o.delivered]
    traceable = float(
        np.mean([tracer.traceable_rate(o.paths[0]) for o in delivered])
    )
    truths = [
        TrafficTruth(m.source, m.destination)
        for m, o in zip(messages, outcomes)
        if o.delivered
    ]
    log = TrafficLog.from_outcomes(delivered)
    flows = ChainLinkingAttack(max_gap=DEADLINE).infer_flows(log)
    print(f"  audit: mean traceable rate = {traceable:.4f} "
          f"(model {best.traceable:.4f}); "
          f"traffic-analysis linkability = {linkability(flows, truths):.2f} "
          f"under {len(truths)} concurrent flows")


if __name__ == "__main__":
    main()

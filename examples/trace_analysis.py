#!/usr/bin/env python
"""Trace-driven pipeline: from contact records to model validation.

Mirrors the paper's §V-D/§V-E methodology on the synthetic haggle-style
traces (see DESIGN.md §3 for the substitution):

1. generate (or load) a trace of ``(a, b, start, end)`` contact records,
2. estimate pairwise contact rates ("the number of nodes and the contact
   frequency are computed from a given trace file"),
3. replay the trace through the onion routing protocol,
4. compare the measured delivery curve against the Eq. 6 model.

To run on a real CRAWDAD file instead, replace the generator call with
``ContactTrace.load("cambridge_haggle.txt")``.

Run:  python examples/trace_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import cambridge_like_trace, infocom05_like_trace
from repro.experiments.runners import (
    analysis_delivery_curve,
    estimate_active_span,
    run_trace_batch,
    simulated_delivery_curve,
    trace_contact_graph,
)

SEED = 21


def describe(name, trace):
    counts = list(trace.contact_counts().values())
    print(f"{name}: {trace.n} nodes, {len(trace)} contacts over "
          f"{trace.duration / 86400:.1f} days, "
          f"{len(counts)} pairs met (mean {np.mean(counts):.1f} contacts/pair)")


def evaluate(name, trace, group_size, onion_routers, copies, deadlines,
             overlapping, sessions=40, seed=SEED):
    describe(name, trace)
    batch = run_trace_batch(
        trace,
        group_size=group_size,
        onion_routers=onion_routers,
        copies=copies,
        deadline=max(deadlines),
        sessions=sessions,
        rng=seed,
        overlapping=overlapping,
    )
    routes = [route for route, _ in batch]
    outcomes = [outcome for _, outcome in batch]
    graph = trace_contact_graph(trace, estimate_active_span(trace.normalized()))
    model = analysis_delivery_curve(graph, routes, deadlines, copies=copies)
    measured = simulated_delivery_curve(outcomes, deadlines)
    print(f"  {'deadline (s)':>12}  {'model':>7}  {'measured':>8}")
    for (t, m), (_, s) in zip(model, measured):
        print(f"  {t:>12g}  {m:>7.3f}  {s:>8.3f}")
    print()


def main() -> None:
    cambridge = cambridge_like_trace(rng=SEED)
    evaluate(
        "Cambridge-like trace (dense, 12 iMotes)",
        cambridge,
        group_size=10,
        onion_routers=3,
        copies=1,
        deadlines=[300.0, 600.0, 1200.0, 1800.0],
        overlapping=True,  # 12 nodes cannot host 3 disjoint groups of 10
    )

    infocom = infocom05_like_trace(rng=SEED)
    evaluate(
        "Infocom-2005-like trace (sparse, 41 iMotes, off-hours)",
        infocom,
        group_size=5,
        onion_routers=3,
        copies=3,
        deadlines=[256.0, 4096.0, 32768.0, 131072.0],
        overlapping=False,
    )
    print("Note the Infocom plateau: deadlines that end inside the night "
          "cannot beat the previous evening's delivery rate — the paper's "
          "Fig. 17 behaviour.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Battlefield scenario: end-to-end anonymous messaging with real onions.

The paper's motivating application (§I): "in a battlefield, one of the
communicating end hosts is most likely to be a commander, and thus,
disclosing the location of the end host will likely result in a mission
failure." This example runs the *full* stack:

* a squad-level contact graph (platoons meet often internally, rarely
  across platoons; couriers bridge them),
* group key initialisation and an actual layered onion (SHA-256-CTR +
  HMAC), padded to a uniform wire size,
* Algorithm 1 forwarding driven by sampled contact events, with the onion
  peeled hop by hop exactly as each group's keys allow,
* an adversary who compromises scouts and reports what it could trace.

Run:  python examples/battlefield_messaging.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ContactGraph,
    Message,
    OnionGroupDirectory,
    PathTracer,
    SimulationEngine,
    SingleCopySession,
)
from repro.contacts.events import ExponentialContactProcess
from repro.crypto.onion import build_onion, pad_blob, peel_onion

SEED = 11
PLATOONS = 6
SOLDIERS_PER_PLATOON = 8
N = PLATOONS * SOLDIERS_PER_PLATOON
INTRA_RATE = 1 / 20.0  # platoon mates meet every ~20 minutes
INTER_RATE = 1 / 600.0  # cross-platoon encounters are rare
COURIERS_PER_PLATOON = 2
COURIER_RATE = 1 / 90.0  # couriers circulate between platoons


def battlefield_graph(rng: np.random.Generator) -> ContactGraph:
    """Clustered contact graph: platoons plus inter-platoon couriers."""
    rates = np.zeros((N, N))
    platoon_of = lambda v: v // SOLDIERS_PER_PLATOON
    couriers = {
        p * SOLDIERS_PER_PLATOON + c
        for p in range(PLATOONS)
        for c in range(COURIERS_PER_PLATOON)
    }
    for i in range(N):
        for j in range(i + 1, N):
            if platoon_of(i) == platoon_of(j):
                rate = INTRA_RATE
            elif i in couriers or j in couriers:
                rate = COURIER_RATE
            else:
                rate = INTER_RATE
            jitter = rng.uniform(0.7, 1.3)
            rates[i, j] = rates[j, i] = rate * jitter
    return ContactGraph(rates)


def main() -> None:
    rng = np.random.default_rng(SEED)
    graph = battlefield_graph(rng)
    print(f"battlefield network: {N} soldiers in {PLATOONS} platoons, "
          f"density {graph.density():.2f}")

    # Onion groups cut across platoons (random membership), so group
    # affiliation reveals nothing about physical position.
    directory = OnionGroupDirectory(N, group_size=6, rng=rng)
    master = b"mission-lambda-master-secret"

    commander, field_unit = 0, N - 1
    route = directory.select_route(commander, field_unit, onion_routers=3, rng=rng)
    print("route groups:", route.group_ids)

    # --- the commander builds the onion ------------------------------------
    routing_keyring = directory.build_keyring(master).restricted_to(route.group_ids)
    order = b"hold position until 0400, then regroup at waypoint K"
    onion = build_onion(list(route.group_ids), field_unit, order, routing_keyring)
    print(f"onion: {len(onion.blob)} bytes on the wire "
          f"({len(order)} byte payload, {route.onion_routers} layers)")

    # --- forwarding with per-hop peeling ------------------------------------
    message = Message(commander, field_unit, created_at=0.0, deadline=2880.0)
    session = SingleCopySession(message, route)
    engine = SimulationEngine(
        ExponentialContactProcess(graph, rng=rng), horizon=2880.0
    )
    engine.add_session(session)
    engine.run()
    outcome = session.outcome()

    if not outcome.delivered:
        print("message expired — rerun with a longer deadline")
        return

    path = outcome.delivered_path
    print(f"delivered in {outcome.delay:.0f} minutes via {path} "
          f"({outcome.transmissions} transmissions)")

    # Re-play the cryptographic peeling the relays performed: each hop's
    # carrier holds only its own group's key.
    blob = onion.blob
    for hop, group_id in enumerate(route.group_ids, start=1):
        carrier = path[hop] if hop < len(path) else field_unit
        carrier_keys = directory.node_keyring(master, carrier)
        # the carrier was chosen from group `group_id`, so it can peel:
        layer = peel_onion(blob, carrier_keys.key_for(group_id))
        blob = pad_blob(layer.inner, onion.wire_size)
        where = f"next group R{layer.next_group}" if not layer.is_final else (
            f"destination v{layer.destination}"
        )
        print(f"  hop {hop}: v{carrier} peeled layer {hop} -> {where}")
    # the last peeled layer carries the payload itself
    assert layer.is_final
    print(f"field unit reads: {layer.inner.decode()!r}")

    # --- the adversary's view ------------------------------------------------
    scouts = set(rng.choice(N, size=N // 10, replace=False))
    tracer = PathTracer(scouts)
    print(f"adversary compromised {len(scouts)} scouts: traceable rate of "
          f"this path = {tracer.traceable_rate(path):.3f} "
          f"({tracer.disclosed_links(path)} of {len(path)} links disclosed)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: onion-based anonymous routing on a random DTN.

Builds the paper's default setting (Table II): a 100-node contact graph
with uniform-random mean inter-contact times, a partition into onion
groups, one onion route, and then

1. predicts the delivery rate with the analytical model (Eq. 6/7),
2. simulates the actual protocol on sampled contact events,
3. scores the simulated path against a random adversary.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CompromiseModel,
    Message,
    MultiCopySession,
    OnionGroupDirectory,
    PathTracer,
    SimulationEngine,
    SingleCopySession,
    delivery_rate,
    delivery_rate_multicopy,
    path_anonymity,
    random_contact_graph,
    traceable_rate_model,
)
from repro.contacts.events import ExponentialContactProcess

SEED = 7
N = 100
GROUP_SIZE = 5
ONION_ROUTERS = 3  # K
DEADLINE = 720.0  # minutes
COMPROMISE_RATE = 0.10


def main() -> None:
    rng = np.random.default_rng(SEED)

    # --- network and route ------------------------------------------------
    graph = random_contact_graph(n=N, rng=rng)
    directory = OnionGroupDirectory(N, GROUP_SIZE, rng=rng)
    source, destination = 0, 99
    route = directory.select_route(source, destination, ONION_ROUTERS, rng=rng)
    print(f"route: v{source} -> " + " -> ".join(f"R{g}" for g in route.group_ids)
          + f" -> v{destination}   (eta = {route.eta} hops)")

    # --- analytical predictions (Eq. 6 / Eq. 7) ----------------------------
    p1 = delivery_rate(graph, source, route.groups, destination, DEADLINE)
    p3 = delivery_rate_multicopy(
        graph, source, route.groups, destination, DEADLINE, copies=3
    )
    print(f"model delivery rate within T={DEADLINE:g} min:  L=1: {p1:.3f}   "
          f"L=3: {p3:.3f}")

    # --- simulate the two protocols ----------------------------------------
    def simulate(copies: int, trials: int = 200) -> float:
        delivered = 0
        for _ in range(trials):
            events = ExponentialContactProcess(graph, rng=rng)
            engine = SimulationEngine(events, horizon=DEADLINE)
            message = Message(source, destination, created_at=0.0, deadline=DEADLINE)
            if copies == 1:
                session = SingleCopySession(message, route)
            else:
                session = MultiCopySession(message, route, copies=copies)
            engine.add_session(session)
            engine.run()
            delivered += session.outcome().delivered
        return delivered / trials

    print(f"simulated delivery rate:                 L=1: {simulate(1):.3f}   "
          f"L=3: {simulate(3):.3f}")
    print("(the model is optimistic on the last hop — the gap the paper "
          "reports in Figs. 4/5)")

    # --- security models ----------------------------------------------------
    eta = route.eta
    print(f"model traceable rate at c/n={COMPROMISE_RATE:.0%}:        "
          f"{traceable_rate_model(eta, COMPROMISE_RATE):.4f}")
    print(f"model path anonymity at c/n={COMPROMISE_RATE:.0%}:        "
          f"{path_anonymity(N, eta, GROUP_SIZE, COMPROMISE_RATE):.4f}")

    # --- one concrete adversary ---------------------------------------------
    events = ExponentialContactProcess(graph, rng=rng)
    engine = SimulationEngine(events, horizon=10 * DEADLINE)
    message = Message(source, destination, created_at=0.0, deadline=10 * DEADLINE)
    session = SingleCopySession(message, route)
    engine.add_session(session)
    engine.run()
    outcome = session.outcome()
    if outcome.delivered:
        compromised = CompromiseModel(N, COMPROMISE_RATE).sample_fixed_count(rng=rng)
        tracer = PathTracer(compromised)
        path = outcome.delivered_path
        print(f"one simulated path {path} against {len(compromised)} "
              f"compromised nodes: traceable rate = "
              f"{tracer.traceable_rate(path):.4f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Mobility-driven network under sustained load, across protocols.

Combines three substrates the paper's evaluation treats separately:

1. a random-waypoint mobility model generates the contact trace (the way
   ONE-style DTN simulators produce workloads),
2. contact rates are estimated from the trace and feed the analytical
   models,
3. a Poisson message workload runs over the estimated contact graph under
   four protocols — onion routing (the paper), TPS, ALAR, and epidemic —
   reporting the delivery/delay/cost/anonymity trade-off table.

Run:  python examples/mobile_network_load.py
"""

from __future__ import annotations

import numpy as np

from repro import OnionGroupDirectory, estimate_rates_from_trace
from repro.contacts.mobility import RandomWaypointConfig, random_waypoint_trace
from repro.extensions.alar import AlarSession
from repro.extensions.tps import TpsSession, select_tps_route
from repro.routing.epidemic import EpidemicSession
from repro.sim.workload import PoissonWorkload, onion_session_factory
from repro.utils.rng import ensure_rng

SEED = 55
NODES = 30
AREA = RandomWaypointConfig(
    width=300.0,
    height=300.0,
    radio_range=20.0,
    min_speed=1.0,
    max_speed=3.0,
    pause_time=30.0,
    time_step=1.0,
)
MOBILITY_DURATION = 6 * 3600.0  # seconds of simulated motion
DEADLINE = 3600.0
ARRIVAL_RATE = 1 / 120.0  # one message every two minutes
INJECTION_WINDOW = 2 * 3600.0


def main() -> None:
    rng = ensure_rng(SEED)

    # 1. mobility -> contacts
    trace = random_waypoint_trace(NODES, MOBILITY_DURATION, AREA, rng=rng)
    print(f"mobility: {NODES} nodes, {len(trace)} contacts over "
          f"{MOBILITY_DURATION / 3600:.0f} h "
          f"({len(trace.contact_counts())} pairs met)")

    # 2. contacts -> estimated rates
    graph = estimate_rates_from_trace(trace.normalized())
    print(f"estimated contact graph: density={graph.density():.2f}, "
          f"mean inter-contact "
          f"{1 / graph.mean_rate() / 60:.1f} min\n")

    # 3. workload under each protocol
    workload = PoissonWorkload(
        arrival_rate=ARRIVAL_RATE,
        message_deadline=DEADLINE,
        duration=INJECTION_WINDOW,
    )
    directory = OnionGroupDirectory(graph.n, group_size=5, rng=rng)

    def tps_factory(message):
        route = select_tps_route(
            graph.n, message.source, message.destination,
            shares=4, threshold=2, rng=rng,
        )
        return TpsSession(message, route)

    protocols = {
        "onion L=1 (paper)": onion_session_factory(
            directory, onion_routers=3, rng=rng
        ),
        "onion L=3 (paper)": onion_session_factory(
            directory, onion_routers=3, copies=3, rng=rng
        ),
        "TPS s=4 tau=2": tps_factory,
        "ALAR k=3": lambda m: AlarSession(m, segments=3, copies_per_segment=8),
        "epidemic": lambda m: EpidemicSession(m),
    }

    header = (f"{'protocol':>18} | {'msgs':>5} {'delivery':>8} "
              f"{'mean delay (min)':>16} {'cost/msg':>9}")
    print(header)
    print("-" * len(header))
    for name, factory in protocols.items():
        result = workload.run(graph, factory, rng=rng)
        stats = result.stats
        delay_min = stats.mean_delay / 60 if np.isfinite(stats.mean_delay) else float("nan")
        print(f"{name:>18} | {result.messages:>5} "
              f"{stats.delivery_rate:>8.3f} {delay_min:>16.1f} "
              f"{stats.mean_transmissions:>9.2f}")

    print("\nreading the table: flooding (epidemic/ALAR) buys delivery and "
          "delay with cost;\nonion routing pays delay for relationship "
          "anonymity; TPS sits between, but a\ncompromised pivot reveals "
          "the destination (see benchmarks/test_comparison_protocols.py).")


if __name__ == "__main__":
    main()

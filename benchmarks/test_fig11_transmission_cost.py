"""Bench: regenerate Fig. 11 — message transmission cost w.r.t. number of copies.

The non-anonymous baseline (2L) is cheapest; measured onion routing
cost stays below the analytical bound (K+2)L and grows with L and K.
"""

from repro.experiments import figure_11


def test_fig11_transmission_cost(record_figure):
    result = record_figure(figure_11, graphs=2, sessions_per_graph=25, seed=11)
    for k in (3, 5):
        analysis = result.get(f"Analysis: K={k}")
        simulation = result.get(f"Simulation: K={k}")
        non_anon = result.get("Non-anonymous")
        for x, y in simulation.points:
            assert y <= analysis.y_at(x)
            assert y >= non_anon.y_at(x) - 1e-9
        assert list(simulation.ys) == sorted(simulation.ys)

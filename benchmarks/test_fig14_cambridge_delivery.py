"""Bench: regenerate Fig. 14 — delivery rate w.r.t. deadline (Cambridge-like trace).

The dense Cambridge-like trace delivers essentially every message
within 1800 seconds; the analysis follows the same trend.
"""

from repro.experiments import figure_14


def test_fig14_cambridge_delivery(record_figure):
    result = record_figure(figure_14, sessions=60, seed=14)
    sim = result.get("Simulation: L=1")
    assert list(sim.ys) == sorted(sim.ys)
    assert sim.points[-1][1] >= 0.8
    # analysis follows the same increasing trend
    model = result.get("Analysis: L=1")
    assert list(model.ys) == sorted(model.ys)

"""Bench: regenerate Fig. 8 — path anonymity w.r.t. compromised rate.

Path anonymity decreases as more nodes are compromised; larger onion
groups preserve more anonymity at every compromise level.
"""

from repro.experiments import figure_08


def test_fig08_anonymity_compromised(record_figure):
    result = record_figure(figure_08, trials=3000, seed=8)
    for g in (1, 5, 10):
        ys = result.get(f"Analysis: g={g}").ys
        assert list(ys) == sorted(ys, reverse=True)
    final = [result.get(f"Simulation: g={g}").points[-1][1] for g in (1, 5, 10)]
    assert final == sorted(final)

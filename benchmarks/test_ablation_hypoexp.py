"""Ablation: Eq. 5/6 closed form vs uniformization for the opportunistic path.

The paper's closed form requires pairwise distinct rates; real onion routes
can produce nearly equal per-hop rates where it cancels catastrophically.
This bench verifies the two evaluators agree where both are defined,
measures their relative speed, and demonstrates the closed form's failure
region that 'auto' avoids.
"""

import time

import numpy as np

from repro.analysis.hypoexponential import Hypoexponential
from repro.utils.rng import ensure_rng


def _agreement(samples: int = 300) -> float:
    rng = ensure_rng(42)
    worst = 0.0
    for _ in range(samples):
        stages = int(rng.integers(2, 8))
        rates = rng.uniform(0.01, 1.0, size=stages)
        # force distinctness for the closed form
        rates = np.sort(rates) * (1 + 1e-3 * np.arange(stages))
        t = float(rng.uniform(0.0, 200.0))
        closed = Hypoexponential(rates, method="closed-form").cdf(t)
        robust = Hypoexponential(rates, method="matrix").cdf(t)
        worst = max(worst, abs(closed - robust))
    return worst


def _timing(evaluations: int = 2000):
    rates = [0.05, 0.11, 0.23, 0.4]
    times = np.linspace(1.0, 500.0, 20)
    timings = {}
    for method in ("closed-form", "matrix"):
        dist = Hypoexponential(rates, method=method)
        start = time.perf_counter()
        for _ in range(evaluations // 20):
            dist.cdf(times)
        timings[method] = time.perf_counter() - start
    return timings


def test_ablation_hypoexponential_evaluators(benchmark):
    def run():
        return {"worst_gap": _agreement(), "timing": _timing()}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Hypoexponential evaluator ablation")
    print(f"  worst |closed - uniformization| over 300 random paths: "
          f"{result['worst_gap']:.2e}")
    for method, seconds in result["timing"].items():
        print(f"  {method:>12}: {seconds * 1000:.1f} ms / 2000 evaluations")
    assert result["worst_gap"] < 1e-7

    # The failure region: nearly equal rates break the closed form's
    # coefficients while 'auto' silently routes around it.
    rates = [0.2, 0.2 * (1 + 1e-9), 0.2 * (1 + 2e-9)]
    auto_value = Hypoexponential(rates, method="auto").cdf(10.0)
    from scipy.stats import erlang

    assert abs(auto_value - erlang.cdf(10.0, a=3, scale=5.0)) < 1e-9

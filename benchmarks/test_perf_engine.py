"""Perf bench: engine dispatch strategies on a fixed seeded workload.

Times the same seeded session batch under broadcast and indexed dispatch
and under the parallel batch layer, records events/sec in the benchmark
extra-info, and asserts the two dispatch modes agree outcome-for-outcome.
Wall-time is archived, not gated — machine speed varies; the invariants
(identical outcomes, indexed not slower than broadcast) do not.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.contacts.random_graph import random_contact_graph
from repro.experiments.config import DEFAULT_CONFIG
from repro.experiments.parallel import run_parallel_batch
from repro.experiments.runners import run_random_graph_batch
from scripts.bench_engine import count_events, outcome_signature

SESSIONS = 200
HORIZON = 360.0
SEED = 42


@pytest.fixture(scope="module")
def workload_graph():
    return random_contact_graph(
        100, DEFAULT_CONFIG.mean_intercontact_range, rng=np.random.default_rng(SEED)
    )


def _run(graph, dispatch):
    return run_random_graph_batch(
        graph,
        5,
        3,
        copies=1,
        horizon=HORIZON,
        sessions=SESSIONS,
        rng=np.random.default_rng(SEED),
        dispatch=dispatch,
    )


def test_perf_indexed_vs_broadcast(benchmark, workload_graph):
    events = count_events(workload_graph, 5, 3, SESSIONS, HORIZON, SEED)

    start = time.perf_counter()
    broadcast = _run(workload_graph, "broadcast")
    broadcast_wall = time.perf_counter() - start

    indexed = benchmark.pedantic(
        lambda: _run(workload_graph, "indexed"), rounds=3, iterations=1
    )
    indexed_wall = benchmark.stats["mean"]

    assert outcome_signature(broadcast) == outcome_signature(indexed)
    assert indexed_wall < broadcast_wall

    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_second_indexed"] = round(
        events / indexed_wall, 1
    )
    benchmark.extra_info["events_per_second_broadcast"] = round(
        events / broadcast_wall, 1
    )
    benchmark.extra_info["speedup"] = round(broadcast_wall / indexed_wall, 2)


def test_perf_parallel_batch(benchmark, workload_graph):
    pairs = benchmark.pedantic(
        lambda: run_parallel_batch(
            run_random_graph_batch,
            sessions=SESSIONS,
            workers=2,
            rng=np.random.default_rng(SEED),
            graph=workload_graph,
            group_size=5,
            onion_routers=3,
            copies=1,
            horizon=HORIZON,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(pairs) == SESSIONS

    # Parallel chunks draw endpoints/routes from spawned SeedSequence
    # children — a different (equally valid) sample than the serial master
    # stream — so the delivered count may drift slightly from serial
    # (BENCH_engine.json records 945 vs 946 on the reference workload).
    # That divergence is *by design* and cannot be closed: ``workers=1``
    # contractually consumes the caller's generator itself (seed-exact
    # with the serial path), so the chunked layout necessarily draws from
    # different streams. What must hold is (a) the drift stays a
    # statistical wobble, not a systematic loss of deliveries, and (b)
    # the chunked outcome is byte-identical across *worker counts*: the
    # default chunk layout is a pure function of ``sessions``.
    serial = _run(workload_graph, "indexed")
    delivered_serial = sum(1 for _, o in serial if o.delivered)
    delivered_parallel = sum(1 for _, o in pairs if o.delivered)
    tolerance = max(5, int(0.05 * SESSIONS))
    assert abs(delivered_parallel - delivered_serial) <= tolerance

    four_workers = run_parallel_batch(
        run_random_graph_batch,
        sessions=SESSIONS,
        workers=4,
        rng=np.random.default_rng(SEED),
        graph=workload_graph,
        group_size=5,
        onion_routers=3,
        copies=1,
        horizon=HORIZON,
    )
    assert outcome_signature(four_workers) == outcome_signature(pairs)

    benchmark.extra_info["workers"] = 2
    benchmark.extra_info["delivered_serial"] = delivered_serial
    benchmark.extra_info["delivered_parallel"] = delivered_parallel


def test_perf_columnar_consume(benchmark, workload_graph):
    events = count_events(workload_graph, 5, 3, SESSIONS, HORIZON, SEED)

    iterator = run_random_graph_batch(
        workload_graph,
        5,
        3,
        copies=1,
        horizon=HORIZON,
        sessions=SESSIONS,
        rng=np.random.default_rng(SEED),
        consume="iterator",
    )
    columnar = benchmark.pedantic(
        lambda: run_random_graph_batch(
            workload_graph,
            5,
            3,
            copies=1,
            horizon=HORIZON,
            sessions=SESSIONS,
            rng=np.random.default_rng(SEED),
            consume="columnar",
        ),
        rounds=3,
        iterations=1,
    )
    assert outcome_signature(iterator) == outcome_signature(columnar)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_second_columnar"] = round(
        events / benchmark.stats["mean"], 1
    )


def test_perf_kernel_consume(benchmark, workload_graph):
    events = count_events(workload_graph, 5, 3, SESSIONS, HORIZON, SEED)

    def batch(consume):
        return run_random_graph_batch(
            workload_graph,
            5,
            3,
            copies=1,
            horizon=HORIZON,
            sessions=SESSIONS,
            rng=np.random.default_rng(SEED),
            consume=consume,
        )

    start = time.perf_counter()
    columnar = batch("columnar")
    columnar_wall = time.perf_counter() - start

    kernel = benchmark.pedantic(
        lambda: batch("kernel"), rounds=3, iterations=1
    )
    kernel_wall = benchmark.stats["mean"]

    assert outcome_signature(columnar) == outcome_signature(kernel)
    # The end-to-end walls share the generation phase, so the ratio here
    # understates the dispatch-only speedup BENCH_engine.json records; the
    # kernel must still win end-to-end on this workload.
    assert kernel_wall < columnar_wall

    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_second_kernel"] = round(
        events / kernel_wall, 1
    )
    benchmark.extra_info["speedup_vs_columnar"] = round(
        columnar_wall / kernel_wall, 2
    )


def test_perf_shared_stream_parallel(benchmark, workload_graph):
    import pickle

    from repro.contacts.events import ExponentialContactProcess
    from repro.experiments.parallel import WorkerPool
    from repro.experiments.shm import leaked_arena_segments

    block = ExponentialContactProcess(
        workload_graph, rng=np.random.default_rng(SEED)
    ).events_until_columnar(HORIZON)
    with WorkerPool(2) as pool:
        pairs = benchmark.pedantic(
            lambda: run_parallel_batch(
                run_random_graph_batch,
                sessions=SESSIONS,
                workers=pool,
                rng=np.random.default_rng(SEED),
                shared_events=block,
                graph=workload_graph,
                group_size=5,
                onion_routers=3,
                copies=1,
                horizon=HORIZON,
            ),
            rounds=2,
            iterations=1,
        )
        # Zero-copy transport: the per-chunk pickle carries a descriptor a
        # few hundred bytes long, not the block's serialized columns.
        descriptor = pool.share_block(block)
        descriptor_bytes = len(pickle.dumps(descriptor))
    assert len(pairs) == SESSIONS
    assert descriptor_bytes < 1024
    assert leaked_arena_segments() == []
    benchmark.extra_info["stream_bytes"] = len(block.to_bytes())
    benchmark.extra_info["descriptor_bytes"] = descriptor_bytes


def test_perf_stream_consume(benchmark, workload_graph):
    events = count_events(workload_graph, 5, 3, SESSIONS, HORIZON, SEED)

    def batch(consume, **knobs):
        return run_random_graph_batch(
            workload_graph,
            5,
            3,
            copies=1,
            horizon=HORIZON,
            sessions=SESSIONS,
            rng=np.random.default_rng(SEED),
            consume=consume,
            **knobs,
        )

    kernel = batch("kernel")
    stream = benchmark.pedantic(
        lambda: batch("stream", stream_window=HORIZON / 8), rounds=3, iterations=1
    )
    assert outcome_signature(kernel) == outcome_signature(stream)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_second_stream"] = round(
        events / benchmark.stats["mean"], 1
    )

"""Cross-protocol comparison: onion routing vs TPS vs ALAR vs baselines.

The paper's related work (§VI) positions group onion routing against the
other anonymous DTN schemes qualitatively; this bench makes the comparison
quantitative on one shared substrate. Expected ordering (and what the
assertions pin):

* delivery/delay: epidemic ≥ ALAR ≥ TPS ≥ onion single-copy (anonymity is
  paid for in delay);
* cost: ALAR/epidemic flood (high), TPS ≈ 2s+1, onion = K+1 (low);
* security: onion hides the relationship end-to-end; TPS reveals the
  destination to a compromised pivot; ALAR only obfuscates the source's
  radio footprint.
"""

import numpy as np

from repro.adversary.compromise import CompromiseModel
from repro.contacts.events import ExponentialContactProcess
from repro.contacts.random_graph import random_contact_graph
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.single_copy import SingleCopySession
from repro.extensions.alar import AlarSession
from repro.extensions.tps import TpsSession, select_tps_route
from repro.routing.epidemic import EpidemicSession
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message
from repro.utils.rng import ensure_rng

N = 100
DEADLINE = 360.0
TRIALS = 250
COMPROMISE_RATE = 0.2


def _run_protocol(name, make_session, rng):
    graph = random_contact_graph(n=N, rng=rng)
    delivered, delays, costs, dest_exposed = [], [], [], 0
    model = CompromiseModel(N, COMPROMISE_RATE)
    for _ in range(TRIALS):
        source, destination = 0, N - 1
        engine = SimulationEngine(
            ExponentialContactProcess(graph, rng=rng), horizon=DEADLINE
        )
        message = Message(source, destination, 0.0, DEADLINE)
        session = make_session(message, rng)
        engine.add_session(session)
        engine.run()
        outcome = session.outcome()
        delivered.append(outcome.delivered)
        costs.append(outcome.transmissions)
        if outcome.delivered:
            delays.append(outcome.delay)
        compromised = model.sample_bernoulli(rng=rng)
        if isinstance(session, TpsSession):
            dest_exposed += session.destination_exposed_to(compromised)
        elif isinstance(session, (EpidemicSession, AlarSession)):
            dest_exposed += 1  # destination id rides in the clear
    return {
        "delivery": float(np.mean(delivered)),
        "delay": float(np.mean(delays)) if delays else float("nan"),
        "cost": float(np.mean(costs)),
        "dest_exposure": dest_exposed / TRIALS,
    }


def test_comparison_protocols(benchmark):
    def run():
        rng = ensure_rng(77)
        directory = OnionGroupDirectory(N, 5, rng=rng)

        def onion(message, r):
            route = directory.select_route(
                message.source, message.destination, 3, rng=r
            )
            return SingleCopySession(message, route)

        def tps(message, r):
            route = select_tps_route(
                N, message.source, message.destination,
                shares=5, threshold=3, rng=r,
            )
            return TpsSession(message, route)

        def alar(message, r):
            return AlarSession(message, segments=3, copies_per_segment=10)

        def epidemic(message, r):
            return EpidemicSession(message)

        return {
            "onion (K=3, g=5)": _run_protocol("onion", onion, rng),
            "TPS (s=5, tau=3)": _run_protocol("tps", tps, rng),
            "ALAR (k=3, cap=10)": _run_protocol("alar", alar, rng),
            "epidemic": _run_protocol("epidemic", epidemic, rng),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    header = (f"{'protocol':>18} | {'delivery':>8} {'delay':>7} "
              f"{'cost':>7} {'dest-exposure':>13}")
    print(header)
    print("-" * len(header))
    for name, stats in result.items():
        print(f"{name:>18} | {stats['delivery']:>8.3f} {stats['delay']:>7.1f} "
              f"{stats['cost']:>7.1f} {stats['dest_exposure']:>13.2f}")

    onion = result["onion (K=3, g=5)"]
    tps = result["TPS (s=5, tau=3)"]
    alar = result["ALAR (k=3, cap=10)"]
    epidemic = result["epidemic"]

    # delivery: flooding schemes dominate the anonymity-preserving ones
    assert epidemic["delivery"] >= alar["delivery"] >= onion["delivery"] - 0.05
    # cost: onion single-copy is the leanest, flooding the heaviest
    assert onion["cost"] < tps["cost"] < alar["cost"]
    # security: onion never reveals the destination to relays; TPS does so
    # exactly when the pivot is compromised (~ compromise rate); the
    # flooding schemes always expose it
    assert 0.05 < tps["dest_exposure"] < 0.4
    assert alar["dest_exposure"] == 1.0
    assert epidemic["dest_exposure"] == 1.0

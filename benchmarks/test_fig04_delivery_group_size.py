"""Bench: regenerate Fig. 4 — delivery rate w.r.t. deadline (group sizes).

Larger onion groups bring more forwarding opportunities: the delivery
rate must increase with g in both the model and the simulation.
"""

from repro.experiments import figure_04


def test_fig04_delivery_group_size(record_figure):
    result = record_figure(figure_04, graphs=3, sessions_per_graph=40, seed=4)
    for kind in ("Analysis", "Simulation"):
        small = result.get(f"{kind}: g=1").points[-1][1]
        large = result.get(f"{kind}: g=10").points[-1][1]
        assert large >= small

"""Bench: extension figure E1 — Eq. 6 vs refined model vs simulation."""

from repro.experiments.extension_figs import figure_e1


def test_ext_e1_model_comparison(record_figure):
    result = record_figure(figure_e1, sessions=120, seed=101)
    paper = result.get("Paper model (Eq. 6)")
    refined = result.get("Refined model")
    simulation = result.get("Simulation")
    for x, y in simulation.points:
        # the paper model upper-bounds, the refined sits between
        assert paper.y_at(x) >= refined.y_at(x) - 1e-9
        assert refined.y_at(x) >= y - 0.12
    # refined is at least as close to the simulation on average
    gap = lambda series: sum(
        abs(series.y_at(x) - y) for x, y in simulation.points
    ) / len(simulation.points)
    assert gap(refined) <= gap(paper) + 1e-9

"""Bench: regenerate Fig. 7 — traceable rate w.r.t. number of onion relays.

Adding relays dilutes every disclosure: traceable rate decreases in K
for every compromise level.
"""

from repro.experiments import figure_07


def test_fig07_traceable_relays(record_figure):
    result = record_figure(figure_07, trials=2000, seed=7)
    for rate in ("10%", "20%", "30%"):
        ys = result.get(f"Analysis: c/n={rate}").ys
        assert list(ys) == sorted(ys, reverse=True)
        sim = result.get(f"Simulation: c/n={rate}")
        model = result.get(f"Analysis: c/n={rate}")
        for x, y in sim.points:
            assert abs(y - model.y_at(x)) < 0.06

"""Bench: regenerate Fig. 16 — path anonymity w.r.t. compromised rate (Cambridge-like trace).

Path anonymity decreases roughly linearly in the compromised rate on
the Cambridge-like configuration (n=12, g=10).
"""

from repro.experiments import figure_16


def test_fig16_cambridge_anonymity(record_figure):
    result = record_figure(figure_16, trials=3000, seed=16)
    sim = result.get("Simulation: L=1")
    assert list(sim.ys) == sorted(sim.ys, reverse=True)
    model = result.get("Analysis: L=1")
    for x, y in sim.points:
        assert abs(y - model.y_at(x)) < 0.08

"""Bench: regenerate Fig. 19 — path anonymity w.r.t. compromised rate (Infocom-2005-like trace).

Single-copy analysis matches simulation; L=3 stays close up to about
30% compromise; L=5 sits slightly below L=3.
"""

from repro.experiments import figure_19


def test_fig19_infocom_anonymity(record_figure):
    result = record_figure(figure_19, trials=3000, seed=19)
    model = result.get("Analysis: L=1")
    sim = result.get("Simulation: L=1")
    for x, y in sim.points:
        # the paper: the model is tight up to ~30% compromise and assumes
        # c << n beyond that, so the tolerance widens with the rate
        tolerance = 0.05 if x <= 0.3 else 0.12
        assert abs(y - model.y_at(x)) < tolerance
    at_30 = [result.get(f"Simulation: L={c}").y_at(0.3) for c in (1, 3, 5)]
    assert at_30 == sorted(at_30, reverse=True)

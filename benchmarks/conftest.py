"""Benchmark harness plumbing.

Every figure bench runs its experiment once under pytest-benchmark (these
are end-to-end reproductions, not microbenchmarks), prints the regenerated
series, and archives the table under ``benchmarks/output/`` so
EXPERIMENTS.md can be assembled from the artefacts.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture
def record_figure(benchmark):
    """Run a figure function once, archive and print its table."""

    def run(figure_func, **kwargs):
        result = benchmark.pedantic(
            lambda: figure_func(**kwargs), rounds=1, iterations=1
        )
        OUTPUT_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "_", result.figure_id.lower()).strip("_")
        (OUTPUT_DIR / f"{slug}.txt").write_text(result.to_table() + "\n")
        benchmark.extra_info["figure"] = result.figure_id
        benchmark.extra_info["series"] = list(result.labels)
        print()
        print(result.to_table())
        return result

    return run

"""Bench: regenerate Fig. 12 — path anonymity w.r.t. compromised rate (multi-copy, g=5).

The delivery/anonymity trade-off: more copies expose more onion groups
and anonymity drops with L at every compromise level.
"""

from repro.experiments import figure_12


def test_fig12_anonymity_copies(record_figure):
    result = record_figure(figure_12, trials=3000, seed=12)
    for rate_point in result.get("Analysis: L=1").xs:
        ordered = [
            result.get(f"Analysis: L={c}").y_at(rate_point) for c in (1, 3, 5)
        ]
        assert ordered == sorted(ordered, reverse=True)
    final = [result.get(f"Simulation: L={c}").points[-1][1] for c in (1, 3, 5)]
    assert final == sorted(final, reverse=True)

"""Ablation: group anycast vs single-relay onion paths.

Motivates the defining term of the paper's Eq. 4 — a node may forward to
*any* member of the next onion group, so the per-hop rate is a sum over the
group instead of a single pairwise rate. Disabling anycast (g = 1) on the
same contact graph collapses delivery to the plain opportunistic-path model
and shows how much of group onion routing's performance comes from the
anycast property alone.
"""

import numpy as np

from repro.contacts.random_graph import random_contact_graph
from repro.experiments.runners import run_random_graph_batch
from repro.sim.metrics import summarize

HORIZON = 1080.0
SESSIONS = 40
GRAPHS = 3


def _delivery(group_size: int, seed: int) -> float:
    rates = []
    for graph_seed in range(GRAPHS):
        graph = random_contact_graph(n=100, rng=seed + graph_seed)
        batch = run_random_graph_batch(
            graph,
            group_size=group_size,
            onion_routers=3,
            copies=1,
            horizon=HORIZON,
            sessions=SESSIONS,
            rng=seed + graph_seed,
        )
        rates.append(np.mean([o.delivered for _, o in batch]))
    return float(np.mean(rates))


def test_ablation_anycast(benchmark):
    def run():
        return {g: _delivery(g, seed=100 + g) for g in (1, 5, 10)}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Anycast ablation — delivery rate at T=1080 min, K=3, L=1")
    for group_size, rate in sorted(result.items()):
        print(f"  g={group_size:>2}: delivery={rate:.3f}")
    # The anycast property is the point: g=5 must clearly beat g=1.
    assert result[5] > result[1]
    assert result[10] >= result[5] - 0.05

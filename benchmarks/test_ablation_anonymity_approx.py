"""Ablation: exact entropy ratio vs the paper's Eq. 19 Stirling closed form.

Eq. 19 assumes n ≫ K and applies Stirling's approximation. This bench maps
the approximation error across the evaluation envelope (n ∈ {12, 41, 100,
1000}) — it must be negligible at the paper's scales and shrink with n.
"""

import numpy as np

from repro.analysis.anonymity import (
    expected_compromised_on_path,
    path_anonymity_closed_form,
    path_anonymity_exact,
)


def _max_error(n: int) -> float:
    eta = 4
    errors = []
    for rate in np.linspace(0.0, 0.5, 26):
        for group_size in (1, 3, 5, 10):
            if group_size > n:
                continue
            c_o = expected_compromised_on_path(eta, rate)
            exact = path_anonymity_exact(n, eta, group_size, c_o)
            closed = path_anonymity_closed_form(n, eta, group_size, c_o)
            errors.append(abs(exact - closed))
    return float(max(errors))


def test_ablation_anonymity_approximation(benchmark):
    def run():
        return {n: _max_error(n) for n in (12, 41, 100, 1000)}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Eq. 19 Stirling approximation error (max |exact - closed| over sweep)")
    for n, error in sorted(result.items()):
        print(f"  n={n:>4}: max error = {error:.4f}")
    # Error shrinks as n grows and is small at the paper's n=100 scale.
    assert result[1000] < result[12]
    assert result[100] < 0.08
    assert result[1000] < 0.03

"""Ablation: source spray vs binary spray in Algorithm 2.

The paper leaves ``Forward()`` to the protocol designer and evaluates
source spray; binary spray (halving the ticket pool on every transfer)
spreads copies faster at the same total budget. This bench quantifies the
delivery/cost effect of that design choice.
"""

import numpy as np

from repro.contacts.random_graph import random_contact_graph
from repro.core.multi_copy import SprayPolicy
from repro.experiments.runners import run_random_graph_batch

HORIZON = 1080.0
SESSIONS = 40
GRAPHS = 3
COPIES = 5


def _run(policy: SprayPolicy, seed: int):
    delivered, cost, delays = [], [], []
    for graph_seed in range(GRAPHS):
        graph = random_contact_graph(n=100, rng=seed + graph_seed)
        batch = run_random_graph_batch(
            graph,
            group_size=5,
            onion_routers=3,
            copies=COPIES,
            horizon=HORIZON,
            sessions=SESSIONS,
            rng=seed + graph_seed,
            spray_policy=policy,
        )
        for _, outcome in batch:
            delivered.append(outcome.delivered)
            cost.append(outcome.transmissions)
            if outcome.delivered:
                delays.append(outcome.delay)
    return {
        "delivery": float(np.mean(delivered)),
        "cost": float(np.mean(cost)),
        "delay": float(np.mean(delays)) if delays else float("nan"),
    }


def test_ablation_spray_policy(benchmark):
    def run():
        return {
            "source": _run(SprayPolicy.SOURCE, seed=200),
            "binary": _run(SprayPolicy.BINARY, seed=200),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"Spray-policy ablation — L={COPIES}, K=3, g=5, T={HORIZON:g} min")
    for policy, stats in result.items():
        print(
            f"  {policy:>6}: delivery={stats['delivery']:.3f} "
            f"cost={stats['cost']:.2f} delay={stats['delay']:.1f}"
        )
    # Both policies spend the same ticket budget; delivery should be in the
    # same ballpark and cost bounded by (K+2)L = 25.
    assert abs(result["source"]["delivery"] - result["binary"]["delivery"]) < 0.25
    assert result["source"]["cost"] <= 25
    assert result["binary"]["cost"] <= 25

"""Ablation: the paper's models vs the refined variants.

Quantifies the two systematic approximations the integration tests pin
down: the Eq. 4 last-hop anycast optimism (delivery) and the Eq. 20
source-hop double counting (multi-copy anonymity). The refined models must
land closer to protocol-level simulation than the paper's originals.
"""

import numpy as np

from repro.analysis.delivery import onion_path_rates
from repro.analysis.anonymity import path_anonymity_multicopy
from repro.analysis.hypoexponential import Hypoexponential
from repro.contacts.events import ExponentialContactProcess
from repro.contacts.random_graph import random_contact_graph
from repro.core.multi_copy import MultiCopySession
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.single_copy import SingleCopySession
from repro.extensions.refined_models import (
    path_anonymity_multicopy_refined,
    refined_onion_path_rates,
)
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message
from repro.utils.rng import ensure_rng


def _delivery_comparison(seed=300, trials=400, deadline=240.0):
    rng = ensure_rng(seed)
    graph = random_contact_graph(n=100, rng=rng)
    directory = OnionGroupDirectory(100, 5, rng=rng)
    route = directory.select_route(0, 99, 3, rng=rng)
    delivered = 0
    for _ in range(trials):
        engine = SimulationEngine(
            ExponentialContactProcess(graph, rng=rng), horizon=deadline
        )
        session = SingleCopySession(Message(0, 99, 0.0, deadline), route)
        engine.add_session(session)
        engine.run()
        delivered += session.outcome().delivered
    simulated = delivered / trials
    paper = float(
        Hypoexponential(
            onion_path_rates(graph, 0, route.groups, 99)
        ).cdf(deadline)
    )
    refined = float(
        Hypoexponential(
            refined_onion_path_rates(graph, 0, route.groups, 99)
        ).cdf(deadline)
    )
    return simulated, paper, refined


def _anonymity_comparison(seed=301, trials=400, rate=0.2, copies=3):
    from repro.adversary.compromise import CompromiseModel
    from repro.adversary.observer import observed_path_anonymity

    rng = ensure_rng(seed)
    graph = random_contact_graph(n=100, rng=rng)
    directory = OnionGroupDirectory(100, 5, rng=rng)
    model = CompromiseModel(100, rate)
    observed = []
    for _ in range(trials):
        route = directory.select_route(0, 99, 3, rng=rng)
        engine = SimulationEngine(
            ExponentialContactProcess(graph, rng=rng), horizon=3000.0
        )
        session = MultiCopySession(
            Message(0, 99, 0.0, 3000.0), route, copies=copies
        )
        engine.add_session(session)
        engine.run()
        outcome = session.outcome()
        if not outcome.delivered:
            continue
        compromised = model.sample_bernoulli(rng=rng)
        observed.append(
            observed_path_anonymity(
                outcome.paths, compromised, n=100, eta=4, group_size=5
            )
        )
    simulated = float(np.mean(observed))
    paper = path_anonymity_multicopy(100, 4, 5, rate, copies, form="exact")
    refined = path_anonymity_multicopy_refined(100, 4, 5, rate, copies)
    return simulated, paper, refined


def test_ablation_refined_models(benchmark):
    def run():
        return {
            "delivery": _delivery_comparison(),
            "anonymity": _anonymity_comparison(),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for metric, (simulated, paper, refined) in result.items():
        print(
            f"{metric:>9}: simulated={simulated:.3f} paper-model={paper:.3f} "
            f"refined={refined:.3f} "
            f"(|paper-sim|={abs(paper - simulated):.3f}, "
            f"|refined-sim|={abs(refined - simulated):.3f})"
        )
    for simulated, paper, refined in result.values():
        # refined must be at least as close to the simulation as the paper's
        assert abs(refined - simulated) <= abs(paper - simulated) + 0.01
    # and the known directions hold
    sim_d, paper_d, _ = result["delivery"]
    assert paper_d >= sim_d - 0.02  # Eq. 4 optimistic
    sim_a, paper_a, _ = result["anonymity"]
    assert paper_a <= sim_a + 0.02  # Eq. 20 pessimistic

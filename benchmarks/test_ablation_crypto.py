"""Ablation: layered-encryption overhead of the onion substrate.

The analyses are crypto-agnostic, but a deployment pays per-hop seal/peel
work and per-layer byte overhead. This bench measures both for the paper's
default route length (K = 3) and a 1 KiB payload.
"""

from repro.crypto.keys import GroupKeyring
from repro.crypto.onion import build_onion, layer_overhead, pad_blob, peel_onion

MASTER = b"bench-master"
ROUTE = [0, 1, 2]
PAYLOAD = b"x" * 1024


def test_ablation_onion_build(benchmark):
    keyring = GroupKeyring.for_groups(MASTER, ROUTE)
    onion = benchmark(build_onion, ROUTE, 42, PAYLOAD, keyring)
    overhead = len(onion.blob) - len(PAYLOAD)
    print()
    print(
        f"Onion build: K={len(ROUTE)}, payload={len(PAYLOAD)}B, "
        f"wire={len(onion.blob)}B (+{overhead}B, "
        f"{layer_overhead()}B/layer)"
    )
    assert overhead == len(ROUTE) * layer_overhead()


def test_ablation_onion_peel_chain(benchmark):
    keyring = GroupKeyring.for_groups(MASTER, ROUTE)
    onion = build_onion(ROUTE, 42, PAYLOAD, keyring)

    def peel_all():
        blob = onion.blob
        for group_id in ROUTE:
            layer = peel_onion(blob, keyring.key_for(group_id))
            blob = pad_blob(layer.inner, onion.wire_size)
        return layer

    layer = benchmark(peel_all)
    assert layer.is_final
    assert layer.inner == PAYLOAD

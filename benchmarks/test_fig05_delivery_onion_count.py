"""Bench: regenerate Fig. 5 — delivery rate w.r.t. deadline (onion router counts).

More onion routers mean longer paths and lower delivery rate at any
deadline; analysis shows the same trend as simulation.
"""

from repro.experiments import figure_05


def test_fig05_delivery_onion_count(record_figure):
    result = record_figure(figure_05, graphs=3, sessions_per_graph=40, seed=5)
    for kind in ("Analysis", "Simulation"):
        short = result.get(f"{kind}: 3 onions").points[-1][1]
        long = result.get(f"{kind}: 10 onions").points[-1][1]
        assert short >= long

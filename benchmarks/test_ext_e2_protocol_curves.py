"""Bench: extension figure E2 — delivery curves across protocols."""

from repro.experiments.extension_figs import figure_e2


def test_ext_e2_protocol_curves(record_figure):
    result = record_figure(figure_e2, sessions=100, seed=102)
    final = {s.label: s.points[-1][1] for s in result.series}
    # flooding dominates, onion multi-copy beats single-copy
    assert final["Epidemic"] >= final["ALAR k=3"] - 0.02
    assert final["ALAR k=3"] >= final["Onion L=1"] - 0.05
    assert final["Onion L=3"] >= final["Onion L=1"]
    # every curve is monotone in the deadline
    for series in result.series:
        ys = list(series.ys)
        assert ys == sorted(ys)

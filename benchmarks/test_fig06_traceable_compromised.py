"""Bench: regenerate Fig. 6 — traceable rate w.r.t. compromised rate.

The traceable rate grows with the fraction of compromised nodes and
shrinks with the number of onion relays; analysis tracks simulation
within a few percent.
"""

from repro.experiments import figure_06


def test_fig06_traceable_compromised(record_figure):
    result = record_figure(figure_06, trials=3000, seed=6)
    for k in (3, 5, 10):
        analysis = result.get(f"Analysis: {k} onions")
        simulation = result.get(f"Simulation: {k} onions")
        for x, y in simulation.points:
            assert abs(y - analysis.y_at(x)) < 0.05
        assert list(analysis.ys) == sorted(analysis.ys)

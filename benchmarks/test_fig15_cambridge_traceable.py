"""Bench: regenerate Fig. 15 — traceable rate w.r.t. compromised rate (Cambridge-like trace).

The traceable-rate model is contact-graph independent, so it stays
accurate on the small dense trace topology (n=12).
"""

from repro.experiments import figure_15


def test_fig15_cambridge_traceable(record_figure):
    result = record_figure(figure_15, trials=3000, seed=15)
    model = result.get("Analysis: 3 onions")
    sim = result.get("Simulation: 3 onions")
    for x, y in sim.points:
        assert abs(y - model.y_at(x)) < 0.06

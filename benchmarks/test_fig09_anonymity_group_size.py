"""Bench: regenerate Fig. 9 — path anonymity w.r.t. group size.

Anonymity increases with group size (the next onion router hides among
g candidates), gradually for single-copy forwarding.
"""

from repro.experiments import figure_09


def test_fig09_anonymity_group_size(record_figure):
    result = record_figure(figure_09, trials=2000, seed=9)
    for rate in ("10%", "20%", "30%"):
        ys = result.get(f"Analysis: c/n={rate}").ys
        assert list(ys) == sorted(ys)
        sim_ys = result.get(f"Simulation: c/n={rate}").ys
        assert sim_ys[-1] >= sim_ys[0]

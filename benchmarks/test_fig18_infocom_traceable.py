"""Bench: regenerate Fig. 18 — traceable rate w.r.t. compromised rate (Infocom-2005-like trace).

Analysis and simulation differ by at most a few percent on the
Infocom-like configuration (n=41, K=3).
"""

from repro.experiments import figure_18


def test_fig18_infocom_traceable(record_figure):
    result = record_figure(figure_18, trials=3000, seed=18)
    model = result.get("Analysis: 3 onions")
    sim = result.get("Simulation: 3 onions")
    for x, y in sim.points:
        assert abs(y - model.y_at(x)) < 0.05

"""Ablation: traffic analysis vs traffic volume (why mixing matters).

The paper's anonymity metrics assume a node-compromise adversary; a global
passive observer running chain-linking traffic analysis is the classic
alternative threat. This bench measures end-to-end linkability of onion
sessions as the concurrent message rate grows: a quiet network is fully
linkable regardless of the onion encryption, and linkability must fall as
cover traffic rises.
"""

import numpy as np

from repro.adversary.traffic_analysis import (
    ChainLinkingAttack,
    TrafficLog,
    TrafficTruth,
    linkability,
)
from repro.contacts.events import ExponentialContactProcess
from repro.contacts.graph import ContactGraph
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.single_copy import SingleCopySession
from repro.sim.engine import SimulationEngine
from repro.sim.workload import PoissonWorkload
from repro.utils.rng import ensure_rng

N = 30
DEADLINE = 300.0


def _linkability_at(arrival_rate: float, duration: float, seed: int) -> float:
    rng = ensure_rng(seed)
    graph = ContactGraph.complete(N, 0.05)
    directory = OnionGroupDirectory(N, 5, rng=rng)
    workload = PoissonWorkload(
        arrival_rate=arrival_rate, message_deadline=DEADLINE, duration=duration
    )
    messages = workload.generate_messages(N, rng)
    engine = SimulationEngine(
        ExponentialContactProcess(graph, rng=rng), horizon=duration + DEADLINE
    )
    sessions = []
    for message in messages:
        route = directory.select_route(
            message.source, message.destination, 3, rng=rng
        )
        sessions.append(engine.add_session(SingleCopySession(message, route)))
    engine.run()
    delivered = [
        (message, session.outcome())
        for message, session in zip(messages, sessions)
        if session.outcome().delivered
    ]
    if len(delivered) < 5:
        raise RuntimeError("not enough delivered messages to measure")
    truths = [
        TrafficTruth(message.source, message.destination)
        for message, _ in delivered
    ]
    log = TrafficLog.from_outcomes([outcome for _, outcome in delivered])
    flows = ChainLinkingAttack(max_gap=DEADLINE).infer_flows(log)
    return linkability(flows, truths)


def test_ablation_traffic_mixing(benchmark):
    # (arrival rate, injection window): ~12, ~30, ~160 messages — the quiet
    # case spaces messages far apart so chains rarely overlap in time.
    scenarios = ((0.004, 3000.0), (0.075, 400.0), (0.4, 400.0))

    def run():
        return {
            rate: _linkability_at(rate, duration, seed=400)
            for rate, duration in scenarios
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Chain-linking linkability of onion sessions vs traffic volume")
    for rate, value in sorted(result.items()):
        print(f"  arrival rate {rate:>6g} msg/min: linkability = {value:.2f}")
    values = [result[rate] for rate, _ in scenarios]
    # more concurrent traffic -> harder linking (allow small non-monotone noise)
    assert values[0] >= values[-1] + 0.2
    assert values[0] > 0.9  # a quiet network is essentially fully linkable

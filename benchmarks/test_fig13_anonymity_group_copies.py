"""Bench: regenerate Fig. 13 — path anonymity w.r.t. group size (multi-copy, c/n=10%).

At a fixed compromise rate, anonymity grows with group size for every
copy count, and multi-copy stays below single-copy.
"""

from repro.experiments import figure_13


def test_fig13_anonymity_group_copies(record_figure):
    result = record_figure(figure_13, trials=2000, seed=13)
    for copies in (1, 3, 5):
        ys = result.get(f"Analysis: L={copies}").ys
        assert list(ys) == sorted(ys)
    at_ten = [result.get(f"Simulation: L={c}").y_at(10.0) for c in (1, 3, 5)]
    assert at_ten == sorted(at_ten, reverse=True)

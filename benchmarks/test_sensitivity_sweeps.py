"""Bench: sensitivity sweeps (network size, density)."""

from repro.experiments.sensitivity import (
    density_sensitivity,
    network_size_sensitivity,
)


def test_sensitivity_network_size(record_figure):
    result = record_figure(network_size_sensitivity, routes=20, seed=201)
    entropy = result.get("Residual entropy H (bits)").ys
    ratio = result.get("Path anonymity D").ys
    assert list(entropy) == sorted(entropy)
    assert list(ratio) == sorted(ratio, reverse=True)


def test_sensitivity_density(record_figure):
    result = record_figure(density_sensitivity, routes=20, seed=202)
    ys = result.get("Delivery (Eq. 6)").ys
    assert list(ys) == sorted(ys)
    assert ys[0] < ys[-1]

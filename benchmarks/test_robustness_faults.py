"""Bench: robustness figures R1/R2 — delivery under churn and greyholes.

R1 demonstrates the availability-scaling equivalence (churn simulation ≈
fault-free simulation of the availability-scaled graph); R2 the
survival-scaled Eq. 6 against greyhole simulation, plus what custody
recovery buys back.
"""

from repro.experiments.robustness_figs import figure_r1, figure_r2


def test_robustness_r1_churn(record_figure):
    result = record_figure(figure_r1, sessions=150, seed=201)
    model = result.get("Analysis: Eq. 6 on churned graph")
    churn = result.get("Simulation: node churn")
    scaled = result.get("Simulation: churned graph")
    # The equivalence: the real churn process and the rate-scaled graph
    # produce the same delivery, up to Monte Carlo noise.
    for x, y in churn.points:
        assert abs(scaled.y_at(x) - y) < 0.15
    # Delivery under churn degrades as availability drops; Eq. 6 keeps its
    # usual optimism (upper bound up to noise).
    model_ys = [y for _, y in sorted(model.points)]
    assert all(a <= b + 1e-9 for a, b in zip(model_ys, model_ys[1:]))
    for x, y in churn.points:
        assert model.y_at(x) >= y - 0.1


def test_robustness_r2_greyhole(record_figure):
    result = record_figure(figure_r2, sessions=150, seed=202)
    model = result.get("Analysis: survival-scaled Eq. 6")
    plain = result.get("Simulation: no recovery")
    recovered = result.get("Simulation: custody recovery")
    # The survival-scaled model tracks the no-recovery simulation.
    for x, y in plain.points:
        assert abs(model.y_at(x) - y) < 0.12
    # Dropping only hurts: the model is monotone nonincreasing in p.
    model_ys = model.ys
    assert all(a >= b - 1e-9 for a, b in zip(model_ys, model_ys[1:]))
    # Custody recovery buys delivery back wherever relays actually drop.
    for x, y in plain.points:
        if x >= 0.5:
            assert recovered.y_at(x) >= y - 0.05
    assert sum(recovered.ys[1:]) > sum(plain.ys[1:])

"""Bench: regenerate Fig. 17 — delivery rate w.r.t. deadline (Infocom-2005-like trace).

The sparse conference trace shows the off-hours plateau: delivery
stalls across the night and resumes the next day; multi-copy gains are
marginal because copies share the few available relays.
"""

from repro.experiments import figure_17


def test_fig17_infocom_delivery(record_figure):
    result = record_figure(figure_17, sessions=60, seed=17)
    sim1 = result.get("Simulation: L=1")
    assert list(sim1.ys) == sorted(sim1.ys)
    assert sim1.points[-1][1] > sim1.points[0][1]
    # multi-copy never hurts, but the gain is modest on this trace
    sim5 = result.get("Simulation: L=5")
    assert sim5.points[-1][1] >= sim1.points[-1][1] - 0.05

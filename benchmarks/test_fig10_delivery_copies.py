"""Bench: regenerate Fig. 10 — delivery rate w.r.t. deadline (copy counts, g=5).

Multi-copy forwarding races L replicas through every hop: delivery
rate increases with L in both the model (Eq. 7) and the simulation.
"""

from repro.experiments import figure_10


def test_fig10_delivery_copies(record_figure):
    result = record_figure(figure_10, graphs=3, sessions_per_graph=40, seed=10)
    for kind in ("Analysis", "Simulation"):
        ordered = [result.get(f"{kind}: L={c}").points[-1][1] for c in (1, 3, 5)]
        # Tolerance: at the last deadline the L>1 analysis curves have
        # saturated at 1.0, where the ordering is float noise (~1e-13)
        # that depends on which routes the shared sweep rng drew.
        assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))

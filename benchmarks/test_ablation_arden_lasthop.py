"""Ablation: abstract last hop vs ARDEN's destination onion group.

The paper's simulations implement ARDEN, whose last hop targets the
destination's own group "to improve the destination anonymity"; the
abstract protocol delivers directly from R_K. This bench quantifies the
price of that anonymity improvement — delivery rate and transmissions —
and validates the arden_hop_rates model against the ARDEN simulation.
"""

import numpy as np

from repro.analysis.hypoexponential import Hypoexponential
from repro.contacts.events import ExponentialContactProcess
from repro.contacts.random_graph import random_contact_graph
from repro.core.arden import ArdenSingleCopySession
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.single_copy import SingleCopySession
from repro.extensions.refined_models import arden_hop_rates
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message
from repro.utils.rng import ensure_rng

N = 100
DEADLINE = 480.0
TRIALS = 400


def _run(seed: int):
    rng = ensure_rng(seed)
    graph = random_contact_graph(n=N, rng=rng)
    directory = OnionGroupDirectory(N, 5, rng=rng)
    source, destination = 0, N - 1
    route = directory.select_route(source, destination, 3, rng=rng)
    destination_group = directory.members(directory.group_of(destination))

    stats = {}
    for name in ("abstract", "arden"):
        delivered, costs = 0, []
        for _ in range(TRIALS):
            message = Message(source, destination, 0.0, DEADLINE)
            if name == "abstract":
                session = SingleCopySession(message, route)
            else:
                session = ArdenSingleCopySession(message, route, destination_group)
            engine = SimulationEngine(
                ExponentialContactProcess(graph, rng=rng), horizon=DEADLINE
            )
            engine.add_session(session)
            engine.run()
            outcome = session.outcome()
            delivered += outcome.delivered
            costs.append(outcome.transmissions)
        stats[name] = {
            "delivery": delivered / TRIALS,
            "cost": float(np.mean(costs)),
        }
    model = float(
        Hypoexponential(
            arden_hop_rates(graph, source, route.groups, destination_group,
                            destination)
        ).cdf(DEADLINE)
    )
    return stats, model


def test_ablation_arden_lasthop(benchmark):
    result, model = benchmark.pedantic(
        lambda: _run(seed=600), rounds=1, iterations=1
    )
    print()
    print(f"ARDEN last-hop ablation — T={DEADLINE:g} min, K=3, g=5")
    for name, stats in result.items():
        print(f"  {name:>9}: delivery={stats['delivery']:.3f} "
              f"cost={stats['cost']:.2f}")
    print(f"  ARDEN hop-rate model prediction: {model:.3f}")
    # the destination-group detour costs delivery probability at a fixed T
    assert result["arden"]["delivery"] <= result["abstract"]["delivery"] + 0.03
    # and (when it routes through a member) one extra transmission
    assert result["arden"]["cost"] >= result["abstract"]["cost"] - 0.1
    # like Eq. 4, the ARDEN hop-rate model keeps the optimistic anycast
    # hops, so it upper-bounds the ARDEN simulation
    assert model >= result["arden"]["delivery"] - 0.03

"""Ablation: route-selection strategy (uniform vs rate-aware vs diverse).

The paper selects onion groups uniformly at random. On heterogeneous
contact graphs a rate-aware selector (best of k candidate routes by the
Eq. 6 model) buys measurable delivery rate at the same K, g, L — and the
diversity selector spreads load with negligible delivery cost.
"""

import numpy as np

from repro.contacts.events import ExponentialContactProcess
from repro.contacts.random_graph import random_contact_graph
from repro.core.onion_groups import OnionGroupDirectory
from repro.core.route_selection import (
    DiverseSelector,
    RateAwareSelector,
    UniformSelector,
)
from repro.core.single_copy import SingleCopySession
from repro.sim.engine import SimulationEngine
from repro.sim.message import Message
from repro.utils.rng import ensure_rng

N = 100
DEADLINE = 240.0
SESSIONS = 120


def _delivery_with(selector_name: str, seed: int) -> float:
    rng = ensure_rng(seed)
    graph = random_contact_graph(n=N, rng=rng)
    directory = OnionGroupDirectory(N, 5, rng=rng)
    selectors = {
        "uniform": UniformSelector(directory, rng=rng),
        "rate-aware": RateAwareSelector(
            directory, graph, reference_deadline=DEADLINE, candidates=8, rng=rng
        ),
        "diverse": DiverseSelector(directory, memory=8, rng=rng),
    }
    selector = selectors[selector_name]
    engine = SimulationEngine(
        ExponentialContactProcess(graph, rng=rng), horizon=DEADLINE
    )
    outcomes = []
    for _ in range(SESSIONS):
        source, destination = rng.choice(N, size=2, replace=False)
        route = selector.select(int(source), int(destination), 3)
        message = Message(int(source), int(destination), 0.0, DEADLINE)
        session = SingleCopySession(message, route)
        engine.add_session(session)
        outcomes.append(session.outcome())
    engine.run()
    return float(np.mean([o.delivered for o in outcomes]))


def test_ablation_route_selection(benchmark):
    def run():
        return {
            name: _delivery_with(name, seed=500)
            for name in ("uniform", "rate-aware", "diverse")
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"Route-selection ablation — delivery at T={DEADLINE:g} min, K=3, g=5")
    for name, rate in result.items():
        print(f"  {name:>10}: delivery={rate:.3f}")
    assert result["rate-aware"] > result["uniform"]
    # diversity must not cost much delivery
    assert result["diverse"] >= result["uniform"] - 0.10

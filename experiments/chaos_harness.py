"""Chaos harness: inject worker failures mid-sweep, assert byte-identity.

The resilient execution layer promises that a sweep which survives
SIGKILLed workers, hung chunks, injected exceptions, kernel-path failures,
and a corrupted checkpoint still merges to results *byte-identical* to an
unfailed run — with every incident classified in the structured failure
report. This script proves it end to end:

1. A reference sweep runs with no injection.
2. The same workload re-runs on a real multi-process supervised pool
   (``max_processes`` forces subprocesses even on a 1-CPU host) under
   phased injection: two workers are SIGKILLed during the first key, the
   checkpoint file is then overwritten with garbage (quarantine +
   recompute), a worker hangs past the chunk timeout during the resumed
   key, and the last key hits both an exception that exhausts the chunk
   degradation ladder and a kernel-rung failure the ladder absorbs.
3. A shared-memory phase ships one event block through the pool-owned
   zero-copy arena, SIGKILLs a worker mid-chunk, and asserts the requeued
   merge equals a fuse-free shared run — and that no ``reproarena-*``
   segment survives under ``/dev/shm`` once the pool closes.
4. The harness asserts the per-key result digests match the reference and
   that the failure taxonomy recorded every injected class, then writes a
   JSON summary (``--output``) and exits non-zero on any mismatch.

Injection uses one-shot "fuse" files: each worker-side chunk execution
claims at most one fuse (atomic ``unlink``) and misbehaves accordingly, so
a retried chunk runs clean and must reproduce the uninjected bytes.

Run from the repository root::

    python experiments/chaos_harness.py --output chaos_summary.json

This is a stress/validation script, not a unit test — the test suite
lives in ``tests/`` (see ``tests/test_chaos_injection.py`` for the fast,
deterministic cousins of these scenarios).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.contacts.events import ExponentialContactProcess
from repro.contacts.random_graph import random_contact_graph
from repro.experiments.parallel import WorkerPool, run_parallel_batch
from repro.experiments.persistence import run_checkpointed
from repro.experiments.runners import run_random_graph_batch
from repro.experiments.shm import leaked_arena_segments
from repro.utils.resilience import (
    CHECKPOINT_CORRUPT,
    CHUNK_ERROR,
    CHUNK_TIMEOUT,
    KERNEL_FALLBACK,
    SHM_LEAK,
    WORKER_CRASH,
    ExecutionReport,
    RetryPolicy,
)

_HANG_SECONDS = 60.0


def arm_fuses(fuse_dir: Path, names) -> None:
    """Create one ``.fuse`` file per injection; consuming it fires it."""
    for name in names:
        (fuse_dir / f"{name}.fuse").write_text("armed")


def unspent_fuses(fuse_dir: Path) -> list:
    return sorted(p.name for p in fuse_dir.glob("*.fuse"))


def _trip_one_fuse(fuse_dir: str, parent_pid: int, kernel) -> None:
    """Consume at most one armed fuse and misbehave accordingly.

    ``unlink`` is the atomic claim: when two workers race for the same
    fuse, exactly one wins and fires. Inline executions (same PID as the
    supervisor) never trip fuses — killing the supervisor would prove
    nothing about the pool.

    Fuse kinds: ``kill`` SIGKILLs the worker, ``hang`` sleeps past any
    chunk timeout, ``kernelfail`` raises only while the kernel rung is
    active (so the ladder's ``kernel=False`` retry runs clean and the
    incident is classified ``KernelFallback``), and ``chunkfail`` raises
    on *every* ladder rung of one execution — it leaves a PID marker so
    the same process's degraded rung re-raises — which exhausts the
    ladder and surfaces as a supervisor-level ``ChunkError`` retry.
    """
    if not fuse_dir or os.getpid() == parent_pid:
        return
    marker = Path(fuse_dir) / f"chunkfail.claimed-{os.getpid()}"
    if marker.exists():
        marker.unlink()
        raise RuntimeError("chaos: injected chunk failure (degraded rung)")
    for fuse in sorted(Path(fuse_dir).glob("*.fuse")):
        kind = fuse.name.split("-", 1)[0]
        if kind == "kernelfail" and kernel is False:
            continue
        try:
            fuse.unlink()
        except FileNotFoundError:
            continue  # another worker claimed it first
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if kind == "hang":
            time.sleep(_HANG_SECONDS)
            return  # pragma: no cover - the pool is killed long before
        if kind == "kernelfail":
            raise RuntimeError("chaos: injected kernel-path failure")
        if kind == "chunkfail":
            marker.write_text("claimed")
            raise RuntimeError("chaos: injected chunk failure (first rung)")
        return


def chaotic_batch(
    graph,
    group_size,
    onion_routers,
    copies,
    horizon,
    sessions,
    rng,
    fuse_dir: str = "",
    parent_pid: int = 0,
    kernel=None,
    events=None,
):
    """`run_random_graph_batch` with a pre-flight chaos fuse check.

    The explicit ``kernel`` parameter opts this wrapper into the chunk
    degradation ladder (a failed execution is retried with
    ``kernel=False``); all simulation arguments pass straight through —
    including the shared-stream protocol's ``events`` — so an execution
    whose fuses are spent is byte-identical to the clean runner.
    """
    _trip_one_fuse(fuse_dir, parent_pid, kernel)
    extra = {} if kernel is None else {"kernel": kernel}
    return run_random_graph_batch(
        graph=graph,
        group_size=group_size,
        onion_routers=onion_routers,
        copies=copies,
        horizon=horizon,
        sessions=sessions,
        rng=rng,
        events=events,
        **extra,
    )


def _digest(outcomes) -> str:
    """Canonical value digest: ``repr`` of every (route, outcome) pair.

    ``pickle`` bytes are identity-sensitive (memoised references differ
    between in-process and cross-process results even when every value is
    equal); ``repr`` is pure value, with exact shortest-round-trip floats.
    """
    canonical = "\n".join(f"{route!r}|{outcome!r}" for route, outcome in outcomes)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def make_compute(graph, sessions, workers, chunks, seed, fuse_dir, parent_pid):
    """Per-key sweep closure: deterministic given the key and seed."""

    def compute(key: str):
        g = int(key.split("=", 1)[1])
        outcomes = run_parallel_batch(
            chaotic_batch,
            sessions=sessions,
            workers=workers,
            rng=np.random.default_rng(seed + g),
            chunks=chunks,
            graph=graph,
            group_size=g,
            onion_routers=2,
            copies=1,
            horizon=720.0,
            fuse_dir=fuse_dir,
            parent_pid=parent_pid,
        )
        delivered = sum(1 for _, outcome in outcomes if outcome.delivered)
        return {"digest": _digest(outcomes), "delivered": delivered}

    return compute


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4,
                        help="requested parallelism (fixes chunk seeds)")
    parser.add_argument("--chunks", type=int, default=8)
    parser.add_argument("--processes", type=int, default=2,
                        help="real worker processes (max_processes override)")
    parser.add_argument("--timeout", type=float, default=3.0,
                        help="per-chunk wall-clock budget, seconds")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON chaos summary here")
    args = parser.parse_args(argv)

    group_sizes = [1, 5]
    keys = [f"g={g}" for g in group_sizes]
    graph = random_contact_graph(n=30, rng=np.random.default_rng(args.seed))
    parent_pid = os.getpid()
    started = time.monotonic()
    phases = []

    with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
        tmp_path = Path(tmp)

        clean_report = ExecutionReport()
        clean = run_checkpointed(
            keys,
            make_compute(graph, args.sessions, args.workers, args.chunks,
                         args.seed, "", parent_pid),
            tmp_path / "clean.ckpt.json",
            report=clean_report,
        )
        if clean_report:
            print("FAIL: reference sweep recorded incidents:",
                  clean_report.describe(), file=sys.stderr)
            return 2

        fuse_dir = tmp_path / "fuses"
        fuse_dir.mkdir()
        policy = RetryPolicy(
            max_retries=4, backoff=0.05, timeout=args.timeout,
            max_pool_restarts=8,
        )
        report = ExecutionReport()
        checkpoint = tmp_path / "chaos.ckpt.json"
        with WorkerPool(
            args.workers, max_processes=args.processes,
            policy=policy, report=report,
        ) as pool:
            compute = make_compute(
                graph, args.sessions, pool, args.chunks, args.seed,
                str(fuse_dir), parent_pid,
            )

            # Phase 1: two workers SIGKILLed while the first key runs.
            arm_fuses(fuse_dir, ("kill-0", "kill-1"))
            run_checkpointed(keys[:1], compute, checkpoint, report=report)
            phases.append(("kill two workers", unspent_fuses(fuse_dir)))

            # Phase 2: corrupt the checkpoint, then resume with a hung
            # worker — quarantine, recompute, and a chunk timeout.
            checkpoint.write_text('{"schema_version": 2, "values": }garbage')
            arm_fuses(fuse_dir, ("hang-0",))
            run_checkpointed(keys[:1], compute, checkpoint, report=report)
            phases.append(("corrupt checkpoint + hang", unspent_fuses(fuse_dir)))

            # Phase 3: the second key hits a ladder-exhausting chunk error
            # and a kernel-rung failure the ladder absorbs.
            arm_fuses(fuse_dir, ("chunkfail-0", "kernelfail-0"))
            chaos = run_checkpointed(keys, compute, checkpoint, report=report)
            phases.append(("chunk error + kernel fallback", unspent_fuses(fuse_dir)))

            # Phase 4: the shared-memory arena under a SIGKILLed worker.
            # The block travels as a zero-copy descriptor through the
            # pool-owned arena; one worker dies mid-chunk, the supervisor
            # restarts the pool (the arena must survive the restart so the
            # requeued chunk can reattach), and the merge must equal the
            # fuse-free shared run chunk for chunk.
            shared_block = ExponentialContactProcess(
                graph, rng=np.random.default_rng(args.seed)
            ).events_until_columnar(720.0)

            def shared_run(workers, fuses):
                return run_parallel_batch(
                    chaotic_batch,
                    sessions=args.sessions,
                    workers=workers,
                    rng=np.random.default_rng(args.seed),
                    chunks=args.chunks,
                    shared_events=shared_block,
                    graph=graph,
                    group_size=4,
                    onion_routers=2,
                    copies=1,
                    horizon=720.0,
                    fuse_dir=fuses,
                    parent_pid=parent_pid,
                )

            shared_clean = shared_run(args.workers, "")
            arm_fuses(fuse_dir, ("kill-2",))
            shared_chaos = shared_run(pool, str(fuse_dir))
            phases.append(("shared arena + kill", unspent_fuses(fuse_dir)))

        leftover = unspent_fuses(fuse_dir)
        # The pool is closed: every arena segment must be gone from
        # /dev/shm no matter how many workers were SIGKILLed.
        leaked = leaked_arena_segments()
        if leaked:
            report.record(
                SHM_LEAK,
                "pool close",
                attempt=1,
                detail=", ".join(leaked),
                resolution="leaked",
            )
        shm_identical = _digest(shared_clean) == _digest(shared_chaos)

    identical = clean == chaos
    counts = report.counts()
    expected_kinds = {
        WORKER_CRASH: 3,        # two SIGKILLed workers + one mid-arena kill
        CHUNK_TIMEOUT: 1,       # one hung chunk past its budget
        CHUNK_ERROR: 1,         # one ladder-exhausting exception
        KERNEL_FALLBACK: 1,     # one kernel-rung failure, degraded
        CHECKPOINT_CORRUPT: 1,  # one garbage checkpoint, quarantined
    }
    missing = {
        kind: need for kind, need in expected_kinds.items()
        if counts.get(kind, 0) < need
    }

    summary = {
        "identical": identical,
        "wall_seconds": round(time.monotonic() - started, 3),
        "sessions": args.sessions,
        "workers_requested": args.workers,
        "processes": args.processes,
        "keys": keys,
        "clean": clean,
        "chaos": chaos,
        "phases": [
            {"phase": name, "fuses_unspent_after": left} for name, left in phases
        ],
        "fuses_unspent": leftover,
        "expected_minimum_counts": expected_kinds,
        "shm": {
            "identical": shm_identical,
            "leaked_segments": leaked,
        },
        "report": report.summary(),
    }
    if args.output is not None:
        args.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"summary written to {args.output}")

    print(report.describe() or "resilience: no incidents (?)")
    for key, value in zip(keys, chaos):
        print(f"  {key}: delivered={value['delivered']} digest={value['digest'][:16]}…")
    if not identical:
        print("FAIL: chaos sweep diverged from the reference run", file=sys.stderr)
        return 1
    if not shm_identical:
        print("FAIL: shared-arena sweep diverged after the worker kill",
              file=sys.stderr)
        return 1
    if leaked:
        print(f"FAIL: arena segments leaked past pool close: {leaked}",
              file=sys.stderr)
        return 1
    if missing:
        print(f"FAIL: expected failure kinds not observed: {missing} "
              f"(unspent fuses: {leftover})", file=sys.stderr)
        return 1
    print("OK: chaos sweep byte-identical to the reference run; "
          "all injected failure classes recovered and reported; "
          "no arena segment outlived the pool")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
